"""Point-to-point duplex links with serialization, latency, and drop-tail.

Models what ns-3's point-to-point channel gives ndnSIM: each direction
of a link has a bandwidth (bits/s) and a propagation latency; packets
serialize one at a time, queueing behind earlier transmissions, and are
dropped when the queue exceeds a byte budget (drop-tail).  The paper's
parameters — 500 Mbps / 1 ms core links, 10 Mbps / 2 ms edge links —
are the defaults provided by :mod:`repro.topology`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.ndn.packets import packet_span_id
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.ndn.node import Node


class Face:
    """One endpoint of a link, owned by a node.

    A face is the NDN abstraction for "interface": nodes send packets
    out of faces, and receive packets along with the face they arrived
    on.  ``face.peer`` is the node on the other side of the link.
    """

    _counter = 0

    __slots__ = ("face_id", "node", "link", "peer", "remote_face")

    @classmethod
    def reset_face_ids(cls) -> None:
        """Restart face-id allocation at 1 (see ``reset_nonce_counter``)."""
        cls._counter = 0

    def __init__(self, node: "Node", link: "Link") -> None:
        Face._counter += 1
        self.face_id = Face._counter
        self.node = node
        self.link = link
        #: Wired by :class:`Link` once both endpoints exist.  Plain
        #: slot attributes (not properties) so the forwarding fast path
        #: below pays attribute reads, not descriptor calls.
        self.peer: "Node" = None  # type: ignore[assignment]
        self.remote_face: "Face" = None  # type: ignore[assignment]

    def send(self, packet: object) -> bool:
        """Transmit ``packet`` toward the peer; False if tail-dropped."""
        link = self.link
        sim = link.sim
        trace = sim.trace
        if (
            link.perf is not None
            or not link.up
            or link.loss_rate > 0.0
            or (trace._n_subs and trace.enabled)
        ):
            return link.transmit(packet, src=self.node)
        # Allocation-free fast path for the headline configuration
        # (link up, lossless, no observatory, no trace subscriber): the
        # same serialization arithmetic — identical expression forms,
        # so float results are bit-identical — and the same
        # ``schedule_at`` call as :meth:`Link._transmit`, minus the
        # branches that configuration can never take.  The drop-tail
        # case defers to the slow path, which recomputes the identical
        # backlog (no RNG, no state mutated yet) and handles counters
        # and span traces.
        now = sim._now
        size = packet.size_bytes()
        tx_time = size * 8.0 / link.bandwidth_bps
        next_free = link._next_free
        node_id = self.node.node_id
        busy = next_free[node_id]
        start = now if now >= busy else busy
        if (start - now) * link.bandwidth_bps / 8.0 > link.queue_bytes:
            return link._transmit(packet, src=self.node)
        next_free[node_id] = start + tx_time
        sim.schedule_at(
            start + tx_time + link.latency, self.peer.receive, packet, self.remote_face
        )
        link.packets_sent += 1
        link.bytes_sent += size
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Face {self.face_id} {self.node.node_id}->{self.peer.node_id}>"


class Link:  # simlint: disable=SL014 (one per edge; observability hooks attach attributes)
    """A duplex point-to-point link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        bandwidth_bps: float = 500e6,
        latency: float = 0.001,
        queue_bytes: int = 64 * 1024,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.queue_bytes = queue_bytes
        #: Independent per-packet loss probability (wireless fading /
        #: interference model for edge links); 0 = lossless.
        self.loss_rate = loss_rate
        self._loss_rng = sim.rng.stream(f"link-loss:{node_a.node_id}:{node_b.node_id}")
        #: Administrative state: a down link silently drops everything
        #: (radio shadow / fiber cut); strategies skip its faces.
        self.up = True
        self._nodes = (node_a, node_b)
        self._faces: Dict[str, Face] = {
            node_a.node_id: Face(node_a, self),
            node_b.node_id: Face(node_b, self),
        }
        # Per-direction state, keyed by source node id.
        self._next_free: Dict[str, float] = {node_a.node_id: 0.0, node_b.node_id: 0.0}
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.obs.perf.PerfObservatory`; when set,
        #: ``transmit`` charges itself to the ``ndn.link`` phase
        #: (``None`` = off, same idiom as the component ``san`` hooks).
        self.perf: Optional[Any] = None
        face_a = self._faces[node_a.node_id]
        face_b = self._faces[node_b.node_id]
        face_a.peer, face_a.remote_face = node_b, face_b
        face_b.peer, face_b.remote_face = node_a, face_a
        node_a.attach_face(face_a)
        node_b.attach_face(face_b)

    def face_of(self, node: "Node") -> Face:
        return self._faces[node.node_id]

    def other_endpoint(self, node: "Node") -> "Node":
        a, b = self._nodes
        return b if node is a else a

    def transmit(self, packet: object, src: "Node") -> bool:
        """Serialize ``packet`` from ``src`` toward the other endpoint.

        Returns False (and counts a drop) when the backlog in this
        direction exceeds the queue byte budget — the drop-tail
        behaviour responsible for the paper's "minimal amount of network
        packet losses".
        """
        perf = self.perf
        if perf is None:
            return self._transmit(packet, src)
        with perf.phase("ndn.link"):
            return self._transmit(packet, src)

    def _transmit(self, packet: object, src: "Node") -> bool:
        if not self.up:
            self.packets_dropped += 1
            self._trace_span_drop(packet, src, "link-down")
            return False
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.packets_dropped += 1
            self._trace_span_drop(packet, src, "loss")
            return False
        now = self.sim.now
        size = packet.size_bytes()
        tx_time = size * 8.0 / self.bandwidth_bps
        start = max(now, self._next_free[src.node_id])
        backlog_bytes = (start - now) * self.bandwidth_bps / 8.0
        if backlog_bytes > self.queue_bytes:
            self.packets_dropped += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit(
                    "link.drop", now,
                    src=src.node_id, dst=self.other_endpoint(src).node_id,
                    size=size,
                )
            self._trace_span_drop(packet, src, "queue-overflow")
            return False
        self._next_free[src.node_id] = start + tx_time
        arrival = start + tx_time + self.latency
        dst = self.other_endpoint(src)
        in_face = self._faces[dst.node_id]
        trace = self.sim.trace
        if trace.active and trace.wants("span.link"):
            span = packet_span_id(packet)
            if span:
                # One record per hop traversal; `queue` is the wait
                # behind earlier transmissions, `tx` the serialization
                # time, `prop` the propagation latency.  The three sum to
                # `arrival - now`, so span decomposition is exact.
                trace.emit(
                    "span.link", now,
                    span=span, src=src.node_id, dst=dst.node_id,
                    kind=type(packet).__name__.lower(),
                    queue=start - now, tx=tx_time, prop=self.latency,
                )
        self.sim.schedule_at(arrival, dst.receive, packet, in_face)
        self.packets_sent += 1
        self.bytes_sent += size
        return True

    def _trace_span_drop(self, packet: object, src: "Node", reason: str) -> None:
        """Terminal span mark for a packet the link swallowed."""
        trace = self.sim.trace
        if trace.active and trace.wants("span.drop"):
            span = packet_span_id(packet)
            if span:
                trace.emit(
                    "span.drop", self.sim.now,
                    span=span, src=src.node_id,
                    dst=self.other_endpoint(src).node_id, reason=reason,
                )

    def utilization(self, direction_src: "Node", now: Optional[float] = None) -> float:
        """Seconds of queued transmission remaining in one direction."""
        now = self.sim.now if now is None else now
        return max(0.0, self._next_free[direction_src.node_id] - now)
