"""Content manifests: per-object integrity verification.

ICN's "built-in security" (paper Section 1) rests on consumers being
able to verify what caches hand them.  Verifying a provider signature
per chunk is expensive; the standard engineering answer (NDN's FLIC,
CCNx manifests) is a *manifest*: one signed object listing the SHA-256
digest of every chunk.  A consumer fetches the manifest once, verifies
its single signature, then checks each arriving chunk against its
digest at hash cost.

This module provides the manifest structure, its canonical encoding
(signable bytes + wire form via the TLV helpers), and verification.
:class:`~repro.core.provider.Provider` publishes one manifest per
object under ``<object>/manifest`` when
``TacticConfig.publish_manifests`` is on.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, replace
from typing import Any, List, Sequence

from repro.ndn.name import Name, NameLike

#: Name component under which an object's manifest is published.
MANIFEST_COMPONENT = "manifest"


@dataclass(slots=True)
class Manifest:
    """Digest list for one content object, signed by its publisher."""

    object_prefix: Name
    chunk_digests: List[bytes]
    signature: bytes = b""

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(object_prefix: NameLike, chunk_payloads: Sequence[bytes]) -> "Manifest":
        """Digest every chunk of an object.

        >>> m = Manifest.build('/prov/obj-0', [b'a', b'b'])
        >>> m.num_chunks
        2
        >>> m.verify_chunk(0, b'a')
        True
        >>> m.verify_chunk(0, b'tampered')
        False
        """
        return Manifest(
            object_prefix=Name(object_prefix),
            chunk_digests=[hashlib.sha256(p).digest() for p in chunk_payloads],
        )

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def signed_bytes(self) -> bytes:
        """Canonical encoding covered by the publisher signature.

        Length-prefixed layout (digests are raw bytes, so delimiter-based
        encodings would corrupt): ``magic || len(prefix) || prefix ||
        count || digest*``.
        """
        prefix = self.object_prefix.to_uri().encode("utf-8")
        return b"".join(
            [
                b"MANIFESTv1",
                struct.pack(">H", len(prefix)),
                prefix,
                struct.pack(">I", len(self.chunk_digests)),
                *self.chunk_digests,
            ]
        )

    def sign_with(self, keypair: Any) -> "Manifest":
        return replace(self, signature=keypair.sign(self.signed_bytes()))

    def verify_signature(self, public_key: Any) -> bool:
        if not self.signature:
            return False
        return public_key.verify(self.signed_bytes(), self.signature)

    # ------------------------------------------------------------------
    # Chunk verification
    # ------------------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        return len(self.chunk_digests)

    def verify_chunk(self, index: int, payload: bytes) -> bool:
        """Hash-check one arriving chunk (cache-supplied or otherwise)."""
        if not 0 <= index < len(self.chunk_digests):
            return False
        return hashlib.sha256(payload).digest() == self.chunk_digests[index]

    def root_digest(self) -> bytes:
        """Digest over all chunk digests: a stable object identifier."""
        return hashlib.sha256(b"".join(self.chunk_digests)).digest()

    @property
    def name(self) -> Name:
        return self.object_prefix / MANIFEST_COMPONENT

    # ------------------------------------------------------------------
    # Wire form (rides in a Data payload)
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        body = self.signed_bytes()
        return struct.pack(">I", len(body)) + body + self.signature

    @staticmethod
    def decode(buf: bytes) -> "Manifest":
        if len(buf) < 4:
            raise ValueError("truncated manifest")
        body_len = struct.unpack(">I", buf[:4])[0]
        body = buf[4 : 4 + body_len]
        signature = buf[4 + body_len :]
        if len(body) != body_len or not body.startswith(b"MANIFESTv1"):
            raise ValueError("malformed manifest body")
        offset = len(b"MANIFESTv1")
        if len(body) < offset + 2:
            raise ValueError("truncated manifest prefix length")
        (prefix_len,) = struct.unpack(">H", body[offset : offset + 2])
        offset += 2
        prefix = Name(body[offset : offset + prefix_len].decode("utf-8"))
        offset += prefix_len
        if len(body) < offset + 4:
            raise ValueError("truncated manifest digest count")
        (count,) = struct.unpack(">I", body[offset : offset + 4])
        offset += 4
        digests = [body[offset + i * 32 : offset + (i + 1) * 32] for i in range(count)]
        if any(len(d) != 32 for d in digests):
            raise ValueError("manifest digest list corrupt")
        return Manifest(
            object_prefix=prefix,
            chunk_digests=digests,
            signature=signature,
        )


def is_manifest_name(name: NameLike) -> bool:
    """Whether a name addresses an object's manifest chunk."""
    name = Name(name)
    return len(name) >= 1 and name[-1] == MANIFEST_COMPONENT
