"""Hierarchical NDN names.

Names are immutable sequences of string components, written in URI form
as ``/component/component/...``.  The empty name (``/``) is the root and
is a prefix of every name.  Longest-prefix matching over names drives
FIB lookups; exact matching drives PIT and content-store lookups.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, Union

NameLike = Union["Name", str, Iterable[str]]


class Name:
    """An immutable hierarchical name.

    >>> n = Name('/prov-0/obj-3/chunk-7')
    >>> len(n)
    3
    >>> n.prefix(1)
    Name('/prov-0')
    >>> Name('/prov-0').is_prefix_of(n)
    True
    >>> n / 'meta'
    Name('/prov-0/obj-3/chunk-7/meta')
    """

    __slots__ = ("components", "_uri", "_hash", "_esize")

    def __new__(cls, value: NameLike = ()) -> "Name":
        # Fast path: Name(name) returns the same immutable instance, so
        # hot call sites can normalize without allocation or rehashing.
        if type(value) is cls:
            return value
        return super().__new__(cls)

    def __init__(self, value: NameLike = ()) -> None:
        if value is self:
            return  # already-initialized instance returned by __new__
        if isinstance(value, Name):
            components: Tuple[str, ...] = value.components
        elif isinstance(value, str):
            stripped = value.strip("/")
            components = tuple(c for c in stripped.split("/") if c) if stripped else ()
        else:
            components = tuple(str(c) for c in value)
        for component in components:
            if "/" in component:
                raise ValueError(f"name component may not contain '/': {component!r}")
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "_uri", "/" + "/".join(components))
        object.__setattr__(self, "_hash", hash(components))
        # Wire size is fixed by the (immutable) components, so it is
        # computed once here instead of per size_bytes() call on the
        # forwarding hot path.
        object.__setattr__(
            self, "_esize", 2 * len(components) + sum(map(len, components))
        )

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, index: int) -> str:
        return self.components[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self.components)

    def prefix(self, length: int) -> "Name":
        """The first ``length`` components as a new name."""
        return Name(self.components[:length])

    @property
    def parent(self) -> "Name":
        if not self.components:
            raise ValueError("root name has no parent")
        return Name(self.components[:-1])

    def append(self, *components: str) -> "Name":
        return Name(self.components + components)

    def __truediv__(self, component: str) -> "Name":
        return self.append(component)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def is_prefix_of(self, other: NameLike) -> bool:
        other = Name(other)
        n = len(self.components)
        return other.components[:n] == self.components

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self.components == other.components
        if isinstance(other, str):
            return self == Name(other)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Name") -> bool:
        return self.components < Name(other).components

    def to_uri(self) -> str:
        return self._uri

    def __str__(self) -> str:
        return self._uri

    def __repr__(self) -> str:
        return f"Name({self._uri!r})"

    def encoded_size(self) -> int:
        """Approximate wire size: 2 bytes TLV per component + text."""
        return self._esize
