"""Content Store: the per-router cache of Data packets.

Pervasive caching is the ICN fundamental that motivates TACTIC: any
router holding a copy becomes a *content router* for that name and must
enforce access control itself (Protocol 3).  The store is an exact-name
cache with optional capacity and a pluggable eviction policy:

- ``lru`` (default, what ndnSIM uses out of the box),
- ``fifo`` (cheapest; insertion order),
- ``lfu`` (frequency; retains the Zipf head, at O(n) eviction cost).

The policy only changes *which* victim is evicted — the TACTIC
protocols are policy-agnostic, which the cache-policy ablation tests
confirm.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.ndn.name import Name, NameLike
from repro.ndn.packets import Data

_POLICIES = ("lru", "fifo", "lfu")


class ContentStore:  # simlint: disable=SL014 (QA tests stub methods per instance)
    """Exact-match cache of Data packets.

    Parameters
    ----------
    capacity:
        Maximum number of Data packets held; 0 disables caching
        entirely (used for edge routers, which the paper models as
        non-caching — content routers are a subset of *core* routers).
    policy:
        Eviction policy: ``lru`` | ``fifo`` | ``lfu``.

    >>> from repro.ndn.packets import Data
    >>> cs = ContentStore(capacity=2)
    >>> cs.insert(Data(name=Name('/a/1')))
    >>> cs.insert(Data(name=Name('/a/2')))
    >>> cs.insert(Data(name=Name('/a/3')))  # evicts /a/1
    >>> cs.lookup('/a/1') is None
    True
    >>> cs.lookup('/a/3').name
    Name('/a/3')
    """

    def __init__(self, capacity: int = 1000, policy: str = "lru") -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}; expected {_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._store: "OrderedDict[Name, Data]" = OrderedDict()
        self._frequency: Dict[Name, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Observability hook (``None`` = off): ``on_hit(name)`` fires on
        #: every successful lookup.  Wired by the owning node so the
        #: store itself stays simulator-free.
        self.on_hit: Optional[object] = None
        #: Optional :class:`~repro.qa.simsan.SimSan`; same ``None`` = off
        #: idiom.  Receives an occupancy-bound callback per insert.
        self.san: Optional[object] = None
        #: Optional :class:`~repro.obs.perf.PerfObservatory`; same
        #: ``None`` = off idiom.  lookup/insert charge themselves to
        #: the ``ndn.cs`` phase when set.
        self.perf: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, name: NameLike) -> bool:
        return Name(name) in self._store

    def insert(self, data: Data) -> None:
        """Cache a copy of ``data`` (tag/NACK/flag per-request state is
        stripped so cached content is request-neutral)."""
        if self.capacity <= 0:
            return
        perf = self.perf
        if perf is None:
            return self._insert(data)
        with perf.phase("ndn.cs"):
            return self._insert(data)

    def _insert(self, data: Data) -> None:
        clean = data.copy()
        clean.tag = None
        clean.nack = None
        clean.flag_f = 0.0
        name = clean.name
        if type(name) is not Name:
            name = Name(name)
        if name in self._store:
            if self.policy == "lru":
                self._store.move_to_end(name)
            self._store[name] = clean
            return
        self._store[name] = clean
        self._frequency[name] = self._frequency.get(name, 0)
        if len(self._store) > self.capacity:
            self._evict_one()
        if self.san is not None:
            self.san.cs_insert(self)

    def _evict_one(self) -> None:
        if self.policy == "lfu":
            victim = min(self._store, key=lambda n: (self._frequency.get(n, 0),))
            del self._store[victim]
            self._frequency.pop(victim, None)
        else:
            # lru and fifo both evict the front; they differ in whether
            # lookups refresh an entry's position.
            victim, _ = self._store.popitem(last=False)
            self._frequency.pop(victim, None)
        self.evictions += 1

    def lookup(self, name: NameLike, now: Optional[float] = None) -> Optional[Data]:
        """Exact-match lookup; returns a fresh copy or None."""
        perf = self.perf
        if perf is None:
            return self._lookup(name, now)
        with perf.phase("ndn.cs"):
            return self._lookup(name, now)

    def _lookup(self, name: NameLike, now: Optional[float] = None) -> Optional[Data]:
        if type(name) is not Name:
            name = Name(name)
        data = self._store.get(name)
        if data is None:
            self.misses += 1
            return None
        policy = self.policy
        if policy == "lru":
            self._store.move_to_end(name)
        elif policy == "lfu":
            self._frequency[name] = self._frequency.get(name, 0) + 1
        self.hits += 1
        if self.on_hit is not None:
            self.on_hit(name)
        return data.copy()

    def evict(self, name: NameLike) -> bool:
        name = Name(name)
        self._frequency.pop(name, None)
        return self._store.pop(name, None) is not None

    def clear(self) -> None:
        self._store.clear()
        self._frequency.clear()

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def state_cost(self) -> Dict[str, int]:
        """Statescope accounting: cached packets + deep bytes.

        Only the owned containers are traversed; the shared sizeof memo
        inside :func:`~repro.obs.statescope.deep_sizeof` keeps names
        referenced by both maps billed once.
        """
        from repro.obs.statescope import deep_sizeof

        seen: set = set()
        size = deep_sizeof(self._store, seen) + deep_sizeof(self._frequency, seen)
        return {"entries": len(self._store), "bytes": size}
