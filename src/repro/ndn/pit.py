"""Pending Interest Table with TACTIC's extended aggregation records.

Conventional NDN aggregates by remembering incoming faces per name.
TACTIC additionally stores, per aggregated request, the 3-tuple
``<Tu, F, InFace>`` (Protocol 4, line 4) so that, when content arrives,
the router can validate every aggregated tag individually and decide
per-downstream whether to deliver content or content+NACK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.ndn.name import Name, NameLike


@dataclass(slots=True)
class PitRecord:
    """One aggregated request: the paper's ``<Tu, F, InFace>`` tuple."""

    tag: Optional[Any]
    flag_f: float
    in_face: Any
    arrived_at: float
    requester_id: str = ""
    nonce: int = 0


@dataclass(slots=True)
class PitEntry:
    """All pending requests for one content name.

    A packed array-of-structs: the records list holds ``__slots__``
    :class:`PitRecord` instances contiguously, so per-entry state is a
    handful of machine words instead of per-record ``__dict__`` churn.
    """

    name: Name
    records: List[PitRecord]
    created_at: float
    expires_at: float

    def add(self, record: PitRecord) -> None:
        self.records.append(record)

    def faces(self) -> List[Any]:
        return [r.in_face for r in self.records]


class Pit:
    """Name-indexed pending-interest table with lazy expiry.

    ``capacity`` (0 = unlimited) bounds the number of simultaneous
    entries: a router under interest-flooding pressure sheds *new*
    names once full (after purging expired state) rather than growing
    without bound — the standard NDN PIT-exhaustion defence.
    """

    __slots__ = (
        "entry_lifetime", "capacity", "_entries", "expired_records",
        "rejections", "on_timeout", "on_aggregate", "san", "perf",
    )

    def __init__(self, entry_lifetime: float = 2.0, capacity: int = 0) -> None:
        self.entry_lifetime = entry_lifetime
        self.capacity = capacity
        self._entries: Dict[Name, PitEntry] = {}
        self.expired_records = 0
        self.rejections = 0
        #: Observability hooks (``None`` = off).  The owning node wires
        #: these to its trace hub; the table itself stays simulator-free.
        #: ``on_timeout(name, num_records)`` fires when an expired entry
        #: is purged; ``on_aggregate(name, record)`` when a request rides
        #: an in-flight entry instead of being forwarded.
        self.on_timeout: Optional[Any] = None
        self.on_aggregate: Optional[Any] = None
        #: Optional :class:`~repro.qa.simsan.SimSan`; same ``None`` = off
        #: idiom.  Receives record-conservation and occupancy callbacks.
        self.san: Optional[Any] = None
        #: Optional :class:`~repro.obs.perf.PerfObservatory`; same
        #: ``None`` = off idiom.  The public find/insert/consume paths
        #: charge themselves to the ``ndn.pit`` phase when set.
        self.perf: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: NameLike) -> bool:
        return self.find(Name(name)) is not None

    def state_cost(self) -> Dict[str, int]:
        """Statescope accounting: live entries/records + deep bytes.

        Passes the owned entry map (never ``self``) so the traversal
        stays inside PIT state — observability hooks hanging off the
        table are not part of its footprint.
        """
        from repro.obs.statescope import deep_sizeof

        records = sum(len(entry.records) for entry in self._entries.values())
        return {
            "entries": len(self._entries),
            "records": records,
            "bytes": deep_sizeof(self._entries),
        }

    def find(self, name: NameLike, now: Optional[float] = None) -> Optional[PitEntry]:
        """Return the live entry for ``name``; expired entries are purged."""
        perf = self.perf
        if perf is None:
            return self._find(name, now)
        with perf.phase("ndn.pit"):
            return self._find(name, now)

    def _find(self, name: NameLike, now: Optional[float] = None) -> Optional[PitEntry]:
        if type(name) is not Name:
            name = Name(name)
        entry = self._entries.get(name)
        if entry is None:
            return None
        if now is not None and now > entry.expires_at:
            self.expired_records += len(entry.records)
            del self._entries[name]
            if self.on_timeout is not None:
                self.on_timeout(name, len(entry.records))
            if self.san is not None:
                self.san.pit_expire(self, len(entry.records))
            return None
        return entry

    def insert(
        self,
        name: NameLike,
        record: PitRecord,
        now: float,
    ) -> bool:
        """Add a record; returns True if this created a new entry.

        A True return means the caller should forward the Interest
        upstream; False means it was aggregated onto an in-flight one —
        or, when the table is at capacity, shed entirely (the record is
        dropped and ``rejections`` incremented; the requester recovers
        via its request expiry).
        """
        perf = self.perf
        if perf is None:
            return self._insert(name, record, now)
        with perf.phase("ndn.pit"):
            return self._insert(name, record, now)

    def _insert(self, name: NameLike, record: PitRecord, now: float) -> bool:
        if type(name) is not Name:
            name = Name(name)
        entry = self._find(name, now)
        if entry is None:
            if self.capacity and len(self._entries) >= self.capacity:
                self._purge_expired(now)
                if len(self._entries) >= self.capacity:
                    self.rejections += 1
                    if self.san is not None:
                        self.san.pit_reject(self)
                    return False
            self._entries[name] = PitEntry(
                name=name,
                records=[record],
                created_at=now,
                expires_at=now + self.entry_lifetime,
            )
            if self.san is not None:
                self.san.pit_insert(self, aggregated=False)
            return True
        entry.add(record)
        if self.on_aggregate is not None:
            self.on_aggregate(name, record)
        if self.san is not None:
            self.san.pit_insert(self, aggregated=True)
        return False

    def consume(self, name: NameLike, now: Optional[float] = None) -> Optional[PitEntry]:
        """Remove and return the entry for ``name`` (Data arrival)."""
        perf = self.perf
        if perf is None:
            return self._consume(name, now)
        with perf.phase("ndn.pit"):
            return self._consume(name, now)

    def _consume(self, name: NameLike, now: Optional[float] = None) -> Optional[PitEntry]:
        if type(name) is not Name:
            name = Name(name)
        entry = self._find(name, now)
        if entry is not None:
            del self._entries[name]
            if self.san is not None:
                self.san.pit_consume(self, entry)
        return entry

    def drop_record(
        self, name: NameLike, predicate: Callable[[PitRecord], bool]
    ) -> int:
        """Remove records matching ``predicate``; returns count removed.

        Used by edge routers on NACK arrival: "rE drops the request with
        Tu from its PIT" (Protocol 2, lines 19-20).
        """
        perf = self.perf
        if perf is None:
            return self._drop_record(name, predicate)
        with perf.phase("ndn.pit"):
            return self._drop_record(name, predicate)

    def _drop_record(
        self, name: NameLike, predicate: Callable[[PitRecord], bool]
    ) -> int:
        if type(name) is not Name:
            name = Name(name)
        entry = self._entries.get(name)
        if entry is None:
            return 0
        before = len(entry.records)
        entry.records = [r for r in entry.records if not predicate(r)]
        removed = before - len(entry.records)
        if not entry.records:
            del self._entries[name]
        if removed and self.san is not None:
            self.san.pit_drop(self, removed)
        return removed

    def purge_expired(self, now: float) -> int:
        """Drop every expired entry; returns number of records dropped."""
        perf = self.perf
        if perf is None:
            return self._purge_expired(now)
        with perf.phase("ndn.pit"):
            return self._purge_expired(now)

    def _purge_expired(self, now: float) -> int:
        dead = [name for name, e in self._entries.items() if now > e.expires_at]
        dropped = 0
        for name in dead:
            records = len(self._entries[name].records)
            dropped += records
            del self._entries[name]
            if self.on_timeout is not None:
                self.on_timeout(name, records)
        self.expired_records += dropped
        if dropped and self.san is not None:
            self.san.pit_expire(self, dropped)
        return dropped
