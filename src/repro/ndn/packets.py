"""NDN packet types, extended with TACTIC's fields.

Three wire-level packets circulate:

- :class:`Interest` -- a named request.  TACTIC extends it with the
  client's tag, the edge/content-router collaboration flag ``F``
  (Section 4.C), and the access path observed by the network entities
  the request traversed (Section 4.A).
- :class:`Data` -- a named content packet.  TACTIC extends it with the
  content access level ``ALD``, the provider's public key locator, the
  echoed ``F`` flag, the tag of the request it answers (the paper's
  ``<D, Tu>`` pair), and an optional attached NACK (the paper's
  ``<D, Tu, NACK>`` triple: content still flows downstream so valid
  aggregated requests can be satisfied).
- :class:`Nack` -- a standalone rejection an edge router sends to a
  client whose request failed pre-checks (Protocol 2, line 2).

Packets are mutable because routers rewrite ``F`` in flight; always
:meth:`~Interest.copy` before forwarding on multiple faces.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.ndn.name import Name

class _NonceCounter:
    """Process-global Interest nonce allocator (never instantiated)."""

    __slots__ = ()

    _iter = itertools.count(1)

    @classmethod
    def take(cls) -> int:
        return next(cls._iter)

    @classmethod
    def reset(cls) -> None:
        cls._iter = itertools.count(1)


def reset_nonce_counter() -> None:
    """Restart nonce allocation at 1.

    Called once per scenario build so nonce values depend only on the
    scenario, never on how many packets earlier runs in the same
    process created — simulations (and their state-footprint
    accounting) stay identical whether they execute in a fresh worker
    or after other runs.
    """
    _NonceCounter.reset()

#: Fixed header overheads (bytes), approximating NDN TLV framing.
INTEREST_BASE_SIZE = 32
DATA_BASE_SIZE = 48
NACK_BASE_SIZE = 24
SIGNATURE_SIZE = 64
ACCESS_PATH_SIZE = 32


class NackReason(enum.Enum):
    """Why a router rejected a request."""

    INVALID_SIGNATURE = "invalid-signature"
    EXPIRED_TAG = "expired-tag"
    PREFIX_MISMATCH = "prefix-mismatch"
    ACCESS_LEVEL = "insufficient-access-level"
    KEY_MISMATCH = "provider-key-mismatch"
    ACCESS_PATH = "access-path-mismatch"
    NO_TAG = "missing-tag"
    NO_ROUTE = "no-route"
    UNAUTHORIZED = "registration-refused"


@dataclass(slots=True)
class Interest:
    """A named request carrying TACTIC authentication state."""

    name: Name
    tag: Optional[Any] = None  # repro.core.tag.Tag (duck-typed to avoid cycle)
    flag_f: float = 0.0
    observed_access_path: bytes = b"\x00" * ACCESS_PATH_SIZE
    nonce: int = field(default_factory=_NonceCounter.take)
    lifetime: float = 1.0
    issued_at: float = 0.0
    # Simulation instrumentation (not wire fields): who originated the
    # request, for metric attribution only — protocol code must not read it.
    requester_id: str = ""
    # Registration payload: opaque credential blob for provider sign-up.
    credentials: Optional[bytes] = None
    # Client request signature (Section 4.A: "to prevent the
    # impersonation attack ... clients have to sign their requests");
    # empty when the access-path fast path is in use instead.
    client_signature: bytes = b""

    def copy(self) -> "Interest":
        # Field-wise slot copy: packets are __slots__ classes (no
        # __dict__ to bulk-update), and skipping __init__ avoids the
        # nonce counter.
        clone = Interest.__new__(Interest)
        clone.name = self.name
        clone.tag = self.tag
        clone.flag_f = self.flag_f
        clone.observed_access_path = self.observed_access_path
        clone.nonce = self.nonce
        clone.lifetime = self.lifetime
        clone.issued_at = self.issued_at
        clone.requester_id = self.requester_id
        clone.credentials = self.credentials
        clone.client_signature = self.client_signature
        return clone

    def is_registration(self) -> bool:
        """Registration interests use the /<provider>/register/... namespace."""
        return len(self.name) >= 2 and self.name[1] == "register"

    def signed_portion(self) -> bytes:
        """Bytes a client signs: the name plus the nonce (replay-fresh)."""
        return f"{self.name.to_uri()}#{self.nonce}".encode("utf-8")

    def size_bytes(self) -> int:
        # name._esize is the Name's precomputed TLV size — no per-hop
        # re-encode (names and tags are immutable in flight).
        size = INTEREST_BASE_SIZE + self.name._esize + ACCESS_PATH_SIZE
        if self.tag is not None:
            size += self.tag.encoded_size()
        if self.credentials is not None:
            size += len(self.credentials)
        size += len(self.client_signature)
        return size


@dataclass(slots=True)
class AttachedNack:
    """NACK attached to a Data packet: the paper's ``<D, T, NACK>``."""

    tag_key: bytes  # cache key of the offending tag
    reason: NackReason


@dataclass(slots=True)
class Data:
    """A named content (or registration-response) packet."""

    name: Name
    payload: bytes = b""
    payload_size: int = 0  # used instead of a real payload for bulk sims
    access_level: Optional[int] = None  # ALD; None = public content
    provider_key_locator: str = ""
    signature: bytes = b""
    flag_f: float = 0.0
    tag: Optional[Any] = None  # the request tag this Data answers (<D, Tu>)
    nack: Optional[AttachedNack] = None
    # Registration responses deliver a fresh tag plus the wrapped
    # content-decryption key (Section 6: "encrypt the content decryption
    # key with the client's public key and send it along with her tag").
    tag_response: Optional[Any] = None
    wrapped_key: Optional[bytes] = None
    freshness: float = 10.0
    created_at: float = 0.0
    # Simulation instrumentation (not a wire field): the Interest span
    # this copy answers — the requesting Interest's nonce, stamped where
    # a Data copy is bound to a PIT record or origin request.  0 = no
    # span.  Protocol code must not read it.
    span_id: int = 0
    #: Opaque application metadata (e.g. a broadcast-encryption
    #: enclosure's key-sharing generation).  Wire size must be folded
    #: into ``payload_size`` by whoever attaches it.
    app_meta: Optional[dict] = None

    def copy(self) -> "Data":
        clone = Data.__new__(Data)
        clone.name = self.name
        clone.payload = self.payload
        clone.payload_size = self.payload_size
        clone.access_level = self.access_level
        clone.provider_key_locator = self.provider_key_locator
        clone.signature = self.signature
        clone.flag_f = self.flag_f
        clone.tag = self.tag
        clone.nack = self.nack
        clone.tag_response = self.tag_response
        clone.wrapped_key = self.wrapped_key
        clone.freshness = self.freshness
        clone.created_at = self.created_at
        clone.span_id = self.span_id
        clone.app_meta = self.app_meta
        return clone

    def is_tag_response(self) -> bool:
        return self.tag_response is not None

    def effective_payload_size(self) -> int:
        return len(self.payload) if self.payload else self.payload_size

    def size_bytes(self) -> int:
        payload = self.payload
        size = (
            DATA_BASE_SIZE
            + self.name._esize
            + (len(payload) if payload else self.payload_size)
            + SIGNATURE_SIZE
        )
        if self.tag is not None:
            size += self.tag.encoded_size()
        if self.nack is not None:
            size += NACK_BASE_SIZE
        if self.tag_response is not None:
            size += self.tag_response.encoded_size()
        if self.wrapped_key is not None:
            size += len(self.wrapped_key)
        return size


@dataclass(slots=True)
class Nack:
    """Standalone NACK from an edge router to a client."""

    name: Name
    reason: NackReason
    nonce: int = 0

    def copy(self) -> "Nack":
        return replace(self)

    def size_bytes(self) -> int:
        return NACK_BASE_SIZE + self.name.encoded_size()


Packet = Any  # Interest | Data | Nack (kept loose for Python 3.9)


def packet_span_id(packet: Packet) -> int:
    """The Interest-lifecycle span a packet belongs to, or 0.

    Interests and standalone NACKs are identified by their nonce; Data
    copies carry the explicit ``span_id`` stamped when they were bound
    to a PIT record (or to the origin request).
    """
    return getattr(packet, "span_id", 0) or getattr(packet, "nonce", 0)
