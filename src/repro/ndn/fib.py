"""Forwarding Information Base with longest-prefix matching.

Each prefix maps to a *ranked nexthop set* (face + cost pairs, cheapest
first), which is what real NDN FIBs hold: the forwarding strategy
(:mod:`repro.ndn.strategy`) then decides whether to use the best hop,
multicast to all of them, or balance across them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ndn.name import Name, NameLike


@dataclass(frozen=True, slots=True)
class NextHop:
    """One candidate upstream face for a prefix."""

    face: object
    cost: float = 0.0


class Fib:
    """Maps name prefixes to ranked nexthop sets.

    Lookup walks from the full name down to the root, returning the
    entry with the longest matching prefix — the standard NDN
    forwarding rule.

    >>> fib = Fib()
    >>> fib.add('/prov-0', face='f1', cost=2)
    >>> fib.add('/prov-0/premium', face='f2', cost=1)
    >>> fib.lookup('/prov-0/premium/obj/chunk')
    'f2'
    >>> fib.lookup('/prov-0/obj')
    'f1'
    >>> fib.lookup('/other') is None
    True
    """

    __slots__ = ("_entries", "_memo")

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, ...], List[NextHop]] = {}
        # Longest-prefix-match results keyed by the *full* looked-up
        # component tuple.  Routers look up a small set of content names
        # over and over, so after the first walk every further lookup is
        # one dict probe — the exact-match fast path.  Any mutation
        # invalidates the whole memo (routing changes are rare).
        self._memo: Dict[Tuple[str, ...], List[NextHop]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, prefix: NameLike, face: object, cost: float = 0.0) -> None:
        """Insert or re-rank a nexthop for ``prefix``.

        Duplicate faces update their cost; the hop list stays sorted
        cheapest-first.
        """
        key = Name(prefix).components
        hops = [h for h in self._entries.get(key, []) if h.face is not face]
        hops.append(NextHop(face=face, cost=cost))
        hops.sort(key=lambda h: h.cost)
        self._entries[key] = hops
        self._memo.clear()

    def add_if_cheaper(self, prefix: NameLike, face: object, cost: float) -> bool:
        """Add the hop unless an existing one is at least as cheap.

        (Used by route assembly so only the shortest-path nexthop —
        plus any added alternates — survives.)
        """
        key = Name(prefix).components
        hops = self._entries.get(key)
        if hops and hops[0].cost <= cost and hops[0].face is not face:
            return False
        self.add(prefix, face, cost)
        return True

    def remove(self, prefix: NameLike) -> None:
        self._entries.pop(Name(prefix).components, None)
        self._memo.clear()

    def remove_nexthop(self, prefix: NameLike, face: object) -> bool:
        """Drop one face from a prefix's hop set (link-failure repair)."""
        key = Name(prefix).components
        hops = self._entries.get(key)
        if not hops:
            return False
        kept = [h for h in hops if h.face is not face]
        if len(kept) == len(hops):
            return False
        if kept:
            self._entries[key] = kept
        else:
            del self._entries[key]
        self._memo.clear()
        return True

    def lookup(self, name: NameLike) -> Optional[object]:
        """Longest-prefix-match; returns the best face or None."""
        hops = self.lookup_nexthops(name)
        return hops[0].face if hops else None

    def lookup_entry(self, name: NameLike) -> Optional[Tuple[object, float]]:
        """Back-compat view: (best face, its cost)."""
        hops = self.lookup_nexthops(name)
        if not hops:
            return None
        return (hops[0].face, hops[0].cost)

    def lookup_nexthops(self, name: NameLike) -> List[NextHop]:
        """All candidate hops for the longest matching prefix."""
        if type(name) is Name:
            components = name.components
        else:
            components = Name(name).components
        memo = self._memo
        cached = memo.get(components)
        if cached is not None:
            return cached
        entries = self._entries
        result: List[NextHop] = []
        for length in range(len(components), -1, -1):
            hops = entries.get(components[:length])
            if hops is not None:
                result = hops
                break
        memo[components] = result
        return result

    def purge_face(self, face: object) -> int:
        """Remove ``face`` from every entry (its link died); returns the
        number of entries touched."""
        touched = 0
        for key in list(self._entries):
            hops = self._entries[key]
            kept = [h for h in hops if h.face is not face]
            if len(kept) != len(hops):
                touched += 1
                if kept:
                    self._entries[key] = kept
                else:
                    del self._entries[key]
        if touched:
            self._memo.clear()
        return touched

    def prefixes(self) -> list:
        return [Name(components) for components in self._entries]

    def state_cost(self) -> Dict[str, int]:
        """Statescope accounting: routed prefixes + deep bytes (the
        lookup memo is real resident state, so it is billed too)."""
        from repro.obs.statescope import deep_sizeof

        seen: set = set()
        size = deep_sizeof(self._entries, seen) + deep_sizeof(self._memo, seen)
        return {"entries": len(self._entries), "bytes": size}
