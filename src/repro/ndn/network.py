"""Network assembly: nodes, links, and FIB population.

A :class:`Network` owns the simulator, every node, and every link, and
computes shortest-path routes (networkx, latency-weighted) from each
router toward each announced name prefix — the role a routing protocol
(NLSR) plays in a real NDN deployment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.ndn.link import Link
from repro.ndn.name import Name, NameLike
from repro.ndn.node import Node
from repro.sim.engine import Simulator


class Network:  # simlint: disable=SL014 (one per scenario)
    """Container wiring nodes, links, and routes together."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._graph = nx.Graph()
        #: (prefix, origin) pairs, remembered so routes can be recomputed
        #: after topology changes (link failure/restoration).
        self._announcements: List[Tuple[Name, Node]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, routable: bool = True) -> Node:
        """Register ``node``.  Non-routable nodes (clients, APs) are kept
        out of the routing graph so shortest paths never cut through
        the wireless edge."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        if routable:
            self._graph.add_node(node.node_id)
        return node

    def connect(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float = 500e6,
        latency: float = 0.001,
        queue_bytes: int = 64 * 1024,
        loss_rate: float = 0.0,
    ) -> Link:
        """Create a duplex link between two registered nodes."""
        link = Link(
            self.sim,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            latency=latency,
            queue_bytes=queue_bytes,
            loss_rate=loss_rate,
        )
        self.links.append(link)
        if a.node_id in self._graph and b.node_id in self._graph:
            self._graph.add_edge(a.node_id, b.node_id, weight=latency, link=link)
        return link

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def announce_prefix(
        self, prefix: NameLike, origin: Node, replace: bool = False
    ) -> None:
        """Install FIB entries toward ``origin`` on every routable node.

        Computes latency-weighted shortest paths from the origin and
        points each router's FIB entry for ``prefix`` at its next hop.
        ``replace=True`` discards any existing hop set first (used when
        re-converging after a topology change, where stale hops may be
        spuriously cheaper than any live path).
        """
        prefix = Name(prefix)
        if origin.node_id not in self._graph:
            raise ValueError(f"origin {origin.node_id!r} is not routable")
        if (prefix, origin) not in self._announcements:
            self._announcements.append((prefix, origin))
        lengths, paths = nx.single_source_dijkstra(self._graph, origin.node_id)
        if replace:
            for node in self.nodes.values():
                node.fib.remove(prefix)
        for node_id, path in paths.items():
            if node_id == origin.node_id:
                continue
            node = self.nodes[node_id]
            next_hop = self.nodes[path[-2]]  # path runs origin -> ... -> node
            face = node.face_toward(next_hop)
            node.fib.add_if_cheaper(prefix, face, cost=lengths[node_id])

    def announce_prefixes(self, announcements: Iterable[Tuple[NameLike, Node]]) -> None:
        for prefix, origin in announcements:
            self.announce_prefix(prefix, origin)

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def find_link(self, a: Node, b: Node) -> Optional[Link]:
        for link in self.links:
            if {n.node_id for n in link._nodes} == {a.node_id, b.node_id}:
                return link
        return None

    def fail_link(self, a: Node, b: Node, reroute: bool = True) -> Link:
        """Take the a—b link down; optionally recompute every route.

        FIB entries pointing over the dead link are purged from both
        endpoints first, so even without a reroute the strategies stop
        selecting it.
        """
        link = self.find_link(a, b)
        if link is None:
            raise LookupError(f"no link between {a.node_id} and {b.node_id}")
        link.up = False
        if self._graph.has_edge(a.node_id, b.node_id):
            self._graph.remove_edge(a.node_id, b.node_id)
        for node in (a, b):
            node.fib.purge_face(link.face_of(node))
        if reroute:
            self.reannounce()
        return link

    def restore_link(self, a: Node, b: Node, reroute: bool = True) -> Link:
        """Bring the a—b link back and (optionally) recompute routes."""
        link = self.find_link(a, b)
        if link is None:
            raise LookupError(f"no link between {a.node_id} and {b.node_id}")
        link.up = True
        if a.node_id in self._graph and b.node_id in self._graph:
            self._graph.add_edge(a.node_id, b.node_id, weight=link.latency, link=link)
        if reroute:
            self.reannounce()
        return link

    def reannounce(self) -> None:
        """Recompute every remembered announcement on the current graph
        (the role of a routing protocol's convergence)."""
        for prefix, origin in self._announcements:
            try:
                self.announce_prefix(prefix, origin, replace=True)
            except ValueError:
                continue  # origin partitioned; nothing to announce

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        return self.nodes[node_id]

    def total_drops(self) -> int:
        return sum(link.packets_dropped for link in self.links)

    def total_bytes(self) -> int:
        return sum(link.bytes_sent for link in self.links)

    def routable_graph(self) -> nx.Graph:
        """A copy of the routing graph (for tests and analysis)."""
        return self._graph.copy()

    def path_latency(self, a: Node, b: Node) -> Optional[float]:
        """Propagation latency of the routed path between two routers."""
        try:
            return nx.dijkstra_path_length(self._graph, a.node_id, b.node_id)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
