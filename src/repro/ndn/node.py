"""The NDN forwarder node and the access-point relay.

:class:`Node` implements vanilla NDN forwarding (CS -> PIT -> FIB on
Interest; PIT consume + reverse-path forward + cache on Data) with
overridable hooks, so TACTIC's router roles (:mod:`repro.core`) and the
baseline schemes (:mod:`repro.baselines`) subclass it and specialize
only what their protocol changes.

:class:`AccessPoint` is the layer-2-ish relay between wireless clients
and their edge router.  It does *not* aggregate (tag handling is
per-request), but it does fold its identity hash into each passing
Interest's observed access path — the rolling hash the edge router
compares against the tag's ``APu`` field (Section 4.A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.cost_model import ComputationCostModel, ZERO_COST_MODEL
from repro.crypto.hashing import entity_identity_hash, xor_fold
from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack, Packet, packet_span_id
from repro.ndn.pit import Pit, PitRecord
from repro.ndn.strategy import BestRouteStrategy
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceHub


class Node:  # simlint: disable=SL014 (SimSan patches send/on_interest per instance)
    """A generic NDN forwarder.

    Parameters
    ----------
    sim:
        The simulator this node schedules against.
    node_id:
        Unique string identity (also hashed into access paths).
    cs_capacity:
        Content-store size in packets; 0 disables caching.
    pit_lifetime:
        Seconds a PIT entry stays alive without being satisfied.
    cost_model:
        Latency model for computation-based events; defaults to zero
        cost (substrate tests want deterministic timing — TACTIC runs
        install the paper's model).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        cs_capacity: int = 1000,
        pit_lifetime: float = 2.0,
        cost_model: Optional[ComputationCostModel] = None,
        cs_policy: str = "lru",
        pit_capacity: int = 0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.faces: List[Face] = []
        self.fib = Fib()
        self.pit = Pit(entry_lifetime=pit_lifetime, capacity=pit_capacity)
        self.cs = ContentStore(capacity=cs_capacity, policy=cs_policy)
        self.cost_model = cost_model or ZERO_COST_MODEL
        self.strategy = BestRouteStrategy()
        self.rng = sim.rng.stream(f"node:{node_id}")
        self.identity_hash = entity_identity_hash(node_id)
        self.interests_received = 0
        self.data_received = 0
        self.nacks_received = 0
        self.unroutable_drops = 0
        # Table-level observability hooks route through this node's
        # trace hub (the tables themselves are simulator-free).  The
        # bound methods early-out on `wants`, so runs with no telemetry
        # subscriber pay one attribute check per hook site.
        self.pit.on_timeout = self._trace_pit_timeout
        self.pit.on_aggregate = self._trace_pit_aggregate
        self.cs.on_hit = self._trace_cs_hit

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_face(self, face: Face) -> None:
        self.faces.append(face)

    def face_toward(self, node: "Node") -> Face:
        for face in self.faces:
            if face.peer is node:
                return face
        raise LookupError(f"{self.node_id} has no face toward {node.node_id}")

    # ------------------------------------------------------------------
    # Packet I/O
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_face: Face) -> None:
        """Entry point invoked by links on packet arrival.

        The dispatch checks ``type(...) is`` before ``isinstance`` (the
        packet classes are never subclassed on the wire), and the rx
        trace emissions are guarded on an actual subscriber being
        present — ``emit`` would early-out anyway, but only after the
        payload kwargs (including ``str(name)``) had been built.
        """
        trace = self.sim.trace
        cls = type(packet)
        if cls is Interest or isinstance(packet, Interest):
            self.interests_received += 1
            if trace._n_subs and trace.enabled:
                trace.emit(
                    "node.rx.interest", self.sim.now,
                    node=self.node_id, content=str(packet.name), nonce=packet.nonce,
                )
            self.on_interest(packet, in_face)
        elif cls is Data or isinstance(packet, Data):
            self.data_received += 1
            if trace._n_subs and trace.enabled:
                trace.emit(
                    "node.rx.data", self.sim.now,
                    node=self.node_id, content=str(packet.name),
                    nack=packet.nack.reason.value if packet.nack else None,
                )
            self.on_data(packet, in_face)
        elif cls is Nack or isinstance(packet, Nack):
            self.nacks_received += 1
            if trace._n_subs and trace.enabled:
                trace.emit(
                    "node.rx.nack", self.sim.now,
                    node=self.node_id, content=str(packet.name),
                    reason=packet.reason.value,
                )
            self.on_nack(packet, in_face)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown packet type: {type(packet)!r}")

    def send(self, face: Face, packet: Packet, delay: float = 0.0) -> None:
        """Send ``packet`` on ``face``, after an optional compute delay."""
        trace = self.sim.trace
        if trace._n_subs and trace.enabled:
            self._trace_tx(trace, packet, delay)
        if delay > 0.0:
            self.sim.schedule(delay, face.send, packet)
        else:
            face.send(packet)

    # ------------------------------------------------------------------
    # Trace emission (all sites early-out unless a subscriber wants them)
    # ------------------------------------------------------------------
    def _trace_tx(self, trace: TraceHub, packet: Packet, delay: float) -> None:
        now = self.sim.now
        if isinstance(packet, Interest):
            if trace.wants("node.tx.interest"):
                trace.emit(
                    "node.tx.interest", now,
                    node=self.node_id, content=str(packet.name), nonce=packet.nonce,
                )
        elif isinstance(packet, Data):
            if trace.wants("node.tx.data"):
                trace.emit(
                    "node.tx.data", now,
                    node=self.node_id, content=str(packet.name),
                    nack=packet.nack.reason.value if packet.nack else None,
                )
        else:
            if trace.wants("node.tx.nack"):
                trace.emit(
                    "node.tx.nack", now,
                    node=self.node_id, content=str(packet.name),
                    reason=packet.reason.value,
                )
        if delay > 0.0 and trace.wants("span.compute"):
            span = packet_span_id(packet)
            if span:
                trace.emit(
                    "span.compute", now,
                    span=span, node=self.node_id, dur=delay,
                )

    def _trace_pit_timeout(self, name: Name, records: int) -> None:
        trace = self.sim.trace
        if trace.wants("pit.timeout"):
            trace.emit(
                "pit.timeout", self.sim.now,
                node=self.node_id, content=str(name), records=records,
            )

    def _trace_pit_aggregate(self, name: Name, record: PitRecord) -> None:
        trace = self.sim.trace
        if trace.wants("pit.aggregate"):
            trace.emit(
                "pit.aggregate", self.sim.now,
                node=self.node_id, content=str(name), nonce=record.nonce,
            )
        # The aggregated span parks here until content arrives; the mark
        # lets span reconstruction attribute the wait to this node.
        if record.nonce and trace.wants("span.pit.wait"):
            trace.emit(
                "span.pit.wait", self.sim.now,
                span=record.nonce, node=self.node_id,
            )

    def _trace_cs_hit(self, name: Name) -> None:
        trace = self.sim.trace
        if trace.wants("cs.hit"):
            trace.emit(
                "cs.hit", self.sim.now,
                node=self.node_id, content=str(name),
            )

    def trace_span_serve(self, interest: Interest) -> None:
        """Mark where an Interest span turned around (cache or origin)."""
        trace = self.sim.trace
        if interest.nonce and trace.wants("span.serve"):
            trace.emit(
                "span.serve", self.sim.now,
                span=interest.nonce, node=self.node_id,
            )

    def compute_delay(self, *ops: str) -> float:
        """Sample and sum the latencies of the named operations."""
        sample = self.cost_model.sample
        rng = self.rng
        total = 0.0
        for op in ops:
            total += sample(op, rng)
        return total

    # ------------------------------------------------------------------
    # Default NDN behaviour (overridden by protocol roles)
    # ------------------------------------------------------------------
    def on_interest(self, interest: Interest, in_face: Face) -> None:
        cached = self.cs.lookup(interest.name, now=self.sim.now)
        if cached is not None:
            cached.tag = interest.tag
            cached.span_id = interest.nonce
            self.trace_span_serve(interest)
            self.send(in_face, cached)
            return
        record = PitRecord(
            tag=interest.tag,
            flag_f=interest.flag_f,
            in_face=in_face,
            arrived_at=self.sim.now,
            requester_id=interest.requester_id,
            nonce=interest.nonce,
        )
        if self.pit.insert(interest.name, record, now=self.sim.now):
            self.forward_interest(interest, in_face)

    def forward_interest(
        self, interest: Interest, in_face: Face, delay: float = 0.0
    ) -> bool:
        """Forward per the node's strategy; False when unroutable."""
        faces = self.strategy.select(
            self.fib.lookup_nexthops(interest.name), in_face, self.rng
        )
        if not faces:
            self.unroutable_drops += 1
            return False
        if len(faces) == 1:
            self.send(faces[0], interest, delay)
            return True
        for index, face in enumerate(faces):
            self.send(face, interest if index == 0 else interest.copy(), delay)
        return True

    def on_data(self, data: Data, in_face: Face) -> None:
        if data.nack is None:
            self.cs.insert(data)
        entry = self.pit.consume(data.name, now=self.sim.now)
        if entry is None:
            return
        for record in entry.records:
            out = data.copy()
            out.tag = record.tag
            out.span_id = record.nonce
            self.send(record.in_face, out)

    def on_nack(self, nack: Nack, in_face: Face) -> None:
        """Default: NACKs terminate here (clients override)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.node_id}>"


@dataclass(slots=True)
class _ApPending:
    nonce: int
    tag_key: Optional[bytes]
    face: Face
    expires_at: float


class AccessPoint(Node):  # simlint: disable=SL014 (Node subclass; same patching)
    """Wireless access-point relay between clients and an edge router.

    Forwards every client Interest upstream without aggregation,
    XOR-folding its identity hash into the Interest's observed access
    path ("each intermediate entity, between u and her corresponding
    rE, adds its identity to the rolling hash").  Downstream traffic is
    demultiplexed back to the requesting client by tag (Data) or nonce
    (standalone NACK).
    """

    def __init__(self, sim: Simulator, node_id: str, pending_lifetime: float = 2.0) -> None:
        super().__init__(sim, node_id, cs_capacity=0)
        self.uplink: Optional[Face] = None
        self.pending_lifetime = pending_lifetime
        self._pending: Dict[Name, List[_ApPending]] = {}

    def set_uplink(self, face: Face) -> None:
        self.uplink = face

    def _purge(self, name: Name) -> None:
        now = self.sim.now
        records = self._pending.get(name)
        if not records:
            return
        # Records append in arrival order with a fixed lifetime, so
        # expires_at is nondecreasing: if the oldest is live, all are —
        # the common case skips the rebuild entirely.
        if records[0].expires_at >= now:
            return
        live = [r for r in records if r.expires_at >= now]
        if live:
            self._pending[name] = live
        else:
            del self._pending[name]

    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if self.uplink is None:
            raise RuntimeError(f"access point {self.node_id} has no uplink")
        if in_face is self.uplink:
            self.unroutable_drops += 1
            return
        name = interest.name
        if type(name) is not Name:
            name = Name(name)
        self._purge(name)
        tag_key = interest.tag.cache_key() if interest.tag is not None else None
        self._pending.setdefault(name, []).append(
            _ApPending(
                nonce=interest.nonce,
                tag_key=tag_key,
                face=in_face,
                expires_at=self.sim.now + self.pending_lifetime,
            )
        )
        out = interest.copy()
        out.observed_access_path = xor_fold(
            out.observed_access_path, self.identity_hash
        )
        self.send(self.uplink, out)

    def on_data(self, data: Data, in_face: Face) -> None:
        name = data.name
        if type(name) is not Name:
            name = Name(name)
        self._purge(name)
        records = self._pending.get(name, [])
        if not records:
            return
        if data.tag is not None:
            tag_key = data.tag.cache_key()
            matched = [r for r in records if r.tag_key == tag_key]
            if not matched:
                matched = records[:]
        else:
            matched = records[:]
        remaining = [r for r in records if r not in matched]
        if remaining:
            self._pending[name] = remaining
        else:
            self._pending.pop(name, None)
        for record in matched:
            out = data.copy()
            out.span_id = record.nonce
            self.send(record.face, out)

    def on_nack(self, nack: Nack, in_face: Face) -> None:
        name = Name(nack.name)
        self._purge(name)
        records = self._pending.get(name, [])
        matched = [r for r in records if r.nonce == nack.nonce] or records[:]
        remaining = [r for r in records if r not in matched]
        if remaining:
            self._pending[name] = remaining
        else:
            self._pending.pop(name, None)
        for record in matched:
            self.send(record.face, nack.copy())
