"""Pluggable forwarding strategies.

ndnSIM separates *what the FIB knows* (ranked nexthop sets) from *how a
node uses it*; the same split here:

- :class:`BestRouteStrategy` — send on the cheapest hop (the default,
  and what the TACTIC evaluation uses),
- :class:`MulticastStrategy` — send on every hop (robustness at the
  price of duplicate upstream traffic; NDN PIT aggregation and the
  content store absorb the duplicates on the way back),
- :class:`LoadBalanceStrategy` — randomize across hops weighted by
  inverse cost (spreads hot prefixes over parallel uplinks).

A strategy returns the list of faces to forward one Interest on; nodes
consult ``self.strategy.select(...)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ndn.fib import NextHop
from repro.ndn.link import Face
from repro.sim.rng import Stream


class Strategy:
    """Base class: pick outgoing faces from a candidate hop set."""

    __slots__ = ()

    name = "abstract"

    def select(
        self,
        nexthops: Sequence[NextHop],
        in_face: Optional[Face],
        rng: Stream,
    ) -> List[Face]:
        raise NotImplementedError

    @staticmethod
    def _usable(nexthops: Sequence[NextHop], in_face: Optional[Face]) -> List[NextHop]:
        """Never forward back where the Interest came from, and never on
        a face whose link is down."""
        usable = []
        for hop in nexthops:
            if hop.face is in_face:
                continue
            link = getattr(hop.face, "link", None)
            if link is not None and not getattr(link, "up", True):
                continue
            usable.append(hop)
        return usable


class BestRouteStrategy(Strategy):
    """The cheapest usable hop only (NDN's best-route strategy)."""

    __slots__ = ()

    name = "best-route"

    def select(
        self,
        nexthops: Sequence[NextHop],
        in_face: Optional[Face],
        rng: Stream,
    ) -> List[Face]:
        # Inline first-usable scan (same order as _usable) so the common
        # single-candidate case allocates only the one-element result.
        for hop in nexthops:
            face = hop.face
            if face is in_face:
                continue
            link = getattr(face, "link", None)
            if link is not None and not getattr(link, "up", True):
                continue
            return [face]
        return []


class MulticastStrategy(Strategy):
    """Every usable hop (NDN's multicast strategy)."""

    __slots__ = ()

    name = "multicast"

    def select(
        self,
        nexthops: Sequence[NextHop],
        in_face: Optional[Face],
        rng: Stream,
    ) -> List[Face]:
        return [hop.face for hop in self._usable(nexthops, in_face)]


class LoadBalanceStrategy(Strategy):
    """One usable hop, drawn with probability inversely proportional to
    cost (cheap paths carry proportionally more traffic)."""

    __slots__ = ()

    name = "load-balance"

    def select(
        self,
        nexthops: Sequence[NextHop],
        in_face: Optional[Face],
        rng: Stream,
    ) -> List[Face]:
        usable = self._usable(nexthops, in_face)
        if not usable:
            return []
        if len(usable) == 1:
            return [usable[0].face]
        weights = [1.0 / (hop.cost + 1e-9) for hop in usable]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for hop, weight in zip(usable, weights):
            acc += weight
            if pick <= acc:
                return [hop.face]
        return [usable[-1].face]


STRATEGIES = {
    "best-route": BestRouteStrategy,
    "multicast": MulticastStrategy,
    "load-balance": LoadBalanceStrategy,
}


def make_strategy(name: str) -> Strategy:
    """Instantiate a strategy by name.

    >>> make_strategy('best-route').name
    'best-route'
    """
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(STRATEGIES)}"
        ) from None
