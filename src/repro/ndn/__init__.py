"""Named-Data Networking substrate.

A from-scratch reimplementation of the NDN machinery TACTIC runs on
(the paper used ndnSIM-2.3): hierarchical names, Interest/Data/NACK
packets extended with TACTIC's fields, the three router tables (FIB,
PIT, CS), point-to-point links with serialization and drop-tail queues,
a generic forwarder node, and network/route assembly.
"""

from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib, NextHop
from repro.ndn.link import Face, Link
from repro.ndn.manifest import Manifest
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.node import AccessPoint, Node
from repro.ndn.packets import (
    AttachedNack,
    Data,
    Interest,
    Nack,
    NackReason,
)
from repro.ndn.pit import Pit, PitEntry, PitRecord
from repro.ndn.strategy import (
    BestRouteStrategy,
    LoadBalanceStrategy,
    MulticastStrategy,
    make_strategy,
)

__all__ = [
    "AccessPoint",
    "AttachedNack",
    "BestRouteStrategy",
    "ContentStore",
    "Data",
    "Face",
    "Fib",
    "Interest",
    "Link",
    "LoadBalanceStrategy",
    "Manifest",
    "MulticastStrategy",
    "Nack",
    "NackReason",
    "Name",
    "Network",
    "NextHop",
    "Node",
    "Pit",
    "PitEntry",
    "PitRecord",
    "make_strategy",
]
