"""NDN TLV wire encoding.

Implements the NDN packet format's Type-Length-Value primitives
(variable-length numbers per the NDN spec: 1 byte below 253, then
0xFD/0xFE/0xFF prefixes for 2/4/8-byte widths) and full codecs for the
simulator's packet types, including TACTIC's extension fields.

The simulator forwards Python objects for speed and uses analytic
``size_bytes()`` estimates for link serialization; this module provides
the *real* wire forms — round-trip tested, and used to validate that
the size estimates are honest (see ``tests/test_ndn_tlv.py``).

TLV type assignments: standard NDN numbers where they exist (Interest
0x05, Data 0x06, Name 0x07, component 0x08, nonce 0x0A, content 0x15,
signature value 0x17); TACTIC extensions live in the application range
(0x80-0x9F).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.ndn.name import Name
from repro.ndn.packets import AttachedNack, Data, Interest, Nack, NackReason, Packet

if TYPE_CHECKING:  # runtime import would be circular (core imports ndn)
    from repro.core.tag import Tag

# --- Standard NDN TLV types -------------------------------------------
TLV_INTEREST = 0x05
TLV_DATA = 0x06
TLV_NAME = 0x07
TLV_NAME_COMPONENT = 0x08
TLV_NONCE = 0x0A
TLV_CONTENT = 0x15
TLV_SIGNATURE_VALUE = 0x17

# --- TACTIC / simulator extension types (application range) ------------
TLV_TAG = 0x80
TLV_TAG_PROVIDER_LOCATOR = 0x81
TLV_TAG_CLIENT_LOCATOR = 0x82
TLV_TAG_ACCESS_LEVEL = 0x83
TLV_TAG_ACCESS_PATH = 0x84
TLV_TAG_EXPIRY = 0x85
TLV_TAG_SIGNATURE = 0x86
TLV_FLAG_F = 0x87
TLV_OBSERVED_PATH = 0x88
TLV_LIFETIME = 0x89
TLV_CREDENTIALS = 0x8A
TLV_ACCESS_LEVEL_D = 0x8B
TLV_PROVIDER_LOCATOR_D = 0x8C
TLV_ATTACHED_NACK = 0x8D
TLV_NACK_REASON = 0x8E
TLV_NACK_TAG_KEY = 0x8F
TLV_WRAPPED_KEY = 0x90
TLV_TAG_RESPONSE = 0x91
TLV_STANDALONE_NACK = 0x92
TLV_PAYLOAD_SIZE = 0x93


class TlvError(ValueError):
    """Malformed TLV input."""


# ----------------------------------------------------------------------
# Varint (NDN "variable-length number")
# ----------------------------------------------------------------------
def encode_varnum(value: int) -> bytes:
    if value < 0:
        raise TlvError(f"negative varnum {value}")
    if value < 0xFD:
        return bytes([value])
    if value <= 0xFFFF:
        return b"\xfd" + value.to_bytes(2, "big")
    if value <= 0xFFFFFFFF:
        return b"\xfe" + value.to_bytes(4, "big")
    return b"\xff" + value.to_bytes(8, "big")


def decode_varnum(buf: bytes, offset: int) -> Tuple[int, int]:
    """Returns (value, next_offset)."""
    if offset >= len(buf):
        raise TlvError("truncated varnum")
    first = buf[offset]
    if first < 0xFD:
        return first, offset + 1
    widths = {0xFD: 2, 0xFE: 4, 0xFF: 8}
    width = widths[first]
    end = offset + 1 + width
    if end > len(buf):
        raise TlvError("truncated varnum body")
    return int.from_bytes(buf[offset + 1 : end], "big"), end


def encode_tlv(tlv_type: int, value: bytes) -> bytes:
    return encode_varnum(tlv_type) + encode_varnum(len(value)) + value


def iter_tlvs(buf: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield (type, value) pairs from a concatenated TLV sequence."""
    offset = 0
    while offset < len(buf):
        tlv_type, offset = decode_varnum(buf, offset)
        length, offset = decode_varnum(buf, offset)
        end = offset + length
        if end > len(buf):
            raise TlvError(f"TLV {tlv_type:#x} overruns buffer")
        yield tlv_type, buf[offset:end]
        offset = end


def _first(buf: bytes, wanted: int) -> Optional[bytes]:
    for tlv_type, value in iter_tlvs(buf):
        if tlv_type == wanted:
            return value
    return None


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------
def encode_name(name: Name) -> bytes:
    body = b"".join(
        encode_tlv(TLV_NAME_COMPONENT, c.encode("utf-8")) for c in Name(name)
    )
    return encode_tlv(TLV_NAME, body)


def decode_name(value: bytes) -> Name:
    components: List[str] = []
    for tlv_type, component in iter_tlvs(value):
        if tlv_type != TLV_NAME_COMPONENT:
            raise TlvError(f"unexpected TLV {tlv_type:#x} inside a name")
        components.append(component.decode("utf-8"))
    return Name(components)


# ----------------------------------------------------------------------
# Tags
# ----------------------------------------------------------------------
def encode_tag(tag: "Tag") -> bytes:
    level = -1 if tag.access_level is None else tag.access_level
    body = b"".join(
        [
            encode_tlv(TLV_TAG_PROVIDER_LOCATOR, tag.provider_key_locator.encode()),
            encode_tlv(TLV_TAG_CLIENT_LOCATOR, tag.client_key_locator.encode()),
            encode_tlv(TLV_TAG_ACCESS_LEVEL, struct.pack(">i", level)),
            encode_tlv(TLV_TAG_ACCESS_PATH, tag.access_path),
            encode_tlv(TLV_TAG_EXPIRY, struct.pack(">d", tag.expiry)),
            encode_tlv(TLV_TAG_SIGNATURE, tag.signature),
        ]
    )
    return encode_tlv(TLV_TAG, body)


def decode_tag(value: bytes) -> "Tag":
    from repro.core.tag import Tag

    fields = dict(iter_tlvs(value))
    try:
        level = struct.unpack(">i", fields[TLV_TAG_ACCESS_LEVEL])[0]
        return Tag(
            provider_key_locator=fields[TLV_TAG_PROVIDER_LOCATOR].decode(),
            client_key_locator=fields[TLV_TAG_CLIENT_LOCATOR].decode(),
            access_level=None if level < 0 else level,
            access_path=fields[TLV_TAG_ACCESS_PATH],
            expiry=struct.unpack(">d", fields[TLV_TAG_EXPIRY])[0],
            signature=fields[TLV_TAG_SIGNATURE],
        )
    except KeyError as missing:
        raise TlvError(f"tag missing field {missing}") from None


# ----------------------------------------------------------------------
# Interests
# ----------------------------------------------------------------------
def encode_interest(interest: Interest) -> bytes:
    parts = [
        encode_name(interest.name),
        encode_tlv(TLV_NONCE, struct.pack(">Q", interest.nonce)),
        encode_tlv(TLV_FLAG_F, struct.pack(">d", interest.flag_f)),
        encode_tlv(TLV_OBSERVED_PATH, interest.observed_access_path),
        encode_tlv(TLV_LIFETIME, struct.pack(">d", interest.lifetime)),
    ]
    if interest.tag is not None:
        parts.append(encode_tag(interest.tag))
    if interest.credentials is not None:
        parts.append(encode_tlv(TLV_CREDENTIALS, interest.credentials))
    return encode_tlv(TLV_INTEREST, b"".join(parts))


def decode_interest(buf: bytes) -> Interest:
    outer = _first(buf, TLV_INTEREST)
    if outer is None:
        raise TlvError("not an Interest")
    name = None
    kwargs = {}
    for tlv_type, value in iter_tlvs(outer):
        if tlv_type == TLV_NAME:
            name = decode_name(value)
        elif tlv_type == TLV_NONCE:
            kwargs["nonce"] = struct.unpack(">Q", value)[0]
        elif tlv_type == TLV_FLAG_F:
            kwargs["flag_f"] = struct.unpack(">d", value)[0]
        elif tlv_type == TLV_OBSERVED_PATH:
            kwargs["observed_access_path"] = value
        elif tlv_type == TLV_LIFETIME:
            kwargs["lifetime"] = struct.unpack(">d", value)[0]
        elif tlv_type == TLV_TAG:
            kwargs["tag"] = decode_tag(value)
        elif tlv_type == TLV_CREDENTIALS:
            kwargs["credentials"] = value
    if name is None:
        raise TlvError("Interest missing name")
    return Interest(name=name, **kwargs)


# ----------------------------------------------------------------------
# Data
# ----------------------------------------------------------------------
_REASON_CODES = {reason: i for i, reason in enumerate(NackReason)}
_REASON_FROM_CODE = {i: reason for reason, i in _REASON_CODES.items()}


def encode_data(data: Data) -> bytes:
    parts = [
        encode_name(data.name),
        encode_tlv(TLV_CONTENT, data.payload),
        encode_tlv(TLV_PAYLOAD_SIZE, struct.pack(">I", data.payload_size)),
        encode_tlv(TLV_PROVIDER_LOCATOR_D, data.provider_key_locator.encode()),
        encode_tlv(TLV_SIGNATURE_VALUE, data.signature),
        encode_tlv(TLV_FLAG_F, struct.pack(">d", data.flag_f)),
    ]
    level = -1 if data.access_level is None else data.access_level
    parts.append(encode_tlv(TLV_ACCESS_LEVEL_D, struct.pack(">i", level)))
    if data.tag is not None:
        parts.append(encode_tag(data.tag))
    if data.nack is not None:
        nack_body = encode_tlv(TLV_NACK_TAG_KEY, data.nack.tag_key) + encode_tlv(
            TLV_NACK_REASON, bytes([_REASON_CODES[data.nack.reason]])
        )
        parts.append(encode_tlv(TLV_ATTACHED_NACK, nack_body))
    if data.tag_response is not None:
        parts.append(encode_tlv(TLV_TAG_RESPONSE, encode_tag(data.tag_response)))
    if data.wrapped_key is not None:
        parts.append(encode_tlv(TLV_WRAPPED_KEY, data.wrapped_key))
    return encode_tlv(TLV_DATA, b"".join(parts))


def decode_data(buf: bytes) -> Data:
    outer = _first(buf, TLV_DATA)
    if outer is None:
        raise TlvError("not a Data packet")
    name = None
    kwargs = {}
    for tlv_type, value in iter_tlvs(outer):
        if tlv_type == TLV_NAME:
            name = decode_name(value)
        elif tlv_type == TLV_CONTENT:
            kwargs["payload"] = value
        elif tlv_type == TLV_PAYLOAD_SIZE:
            kwargs["payload_size"] = struct.unpack(">I", value)[0]
        elif tlv_type == TLV_PROVIDER_LOCATOR_D:
            kwargs["provider_key_locator"] = value.decode()
        elif tlv_type == TLV_SIGNATURE_VALUE:
            kwargs["signature"] = value
        elif tlv_type == TLV_FLAG_F:
            kwargs["flag_f"] = struct.unpack(">d", value)[0]
        elif tlv_type == TLV_ACCESS_LEVEL_D:
            level = struct.unpack(">i", value)[0]
            kwargs["access_level"] = None if level < 0 else level
        elif tlv_type == TLV_TAG:
            kwargs["tag"] = decode_tag(value)
        elif tlv_type == TLV_ATTACHED_NACK:
            fields = dict(iter_tlvs(value))
            kwargs["nack"] = AttachedNack(
                tag_key=fields[TLV_NACK_TAG_KEY],
                reason=_REASON_FROM_CODE[fields[TLV_NACK_REASON][0]],
            )
        elif tlv_type == TLV_TAG_RESPONSE:
            inner = _first(value, TLV_TAG)
            kwargs["tag_response"] = decode_tag(inner)
        elif tlv_type == TLV_WRAPPED_KEY:
            kwargs["wrapped_key"] = value
    if name is None:
        raise TlvError("Data missing name")
    return Data(name=name, **kwargs)


# ----------------------------------------------------------------------
# Standalone NACKs
# ----------------------------------------------------------------------
def encode_nack(nack: Nack) -> bytes:
    body = (
        encode_name(nack.name)
        + encode_tlv(TLV_NACK_REASON, bytes([_REASON_CODES[nack.reason]]))
        + encode_tlv(TLV_NONCE, struct.pack(">Q", nack.nonce))
    )
    return encode_tlv(TLV_STANDALONE_NACK, body)


def decode_nack(buf: bytes) -> Nack:
    outer = _first(buf, TLV_STANDALONE_NACK)
    if outer is None:
        raise TlvError("not a NACK")
    fields = dict(iter_tlvs(outer))
    return Nack(
        name=decode_name(fields[TLV_NAME]),
        reason=_REASON_FROM_CODE[fields[TLV_NACK_REASON][0]],
        nonce=struct.unpack(">Q", fields[TLV_NONCE])[0],
    )


def encode_packet(packet: Packet) -> bytes:
    """Encode any simulator packet to its wire form."""
    if isinstance(packet, Interest):
        return encode_interest(packet)
    if isinstance(packet, Data):
        return encode_data(packet)
    if isinstance(packet, Nack):
        return encode_nack(packet)
    raise TlvError(f"cannot encode {type(packet)!r}")


def decode_packet(buf: bytes) -> Packet:
    """Decode a wire buffer into the matching packet object."""
    for tlv_type, _ in iter_tlvs(buf):
        if tlv_type == TLV_INTEREST:
            return decode_interest(buf)
        if tlv_type == TLV_DATA:
            return decode_data(buf)
        if tlv_type == TLV_STANDALONE_NACK:
            return decode_nack(buf)
        break
    raise TlvError("unrecognized packet type")
