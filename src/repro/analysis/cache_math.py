"""Che's approximation: closed-form LRU hit ratios under Zipf demand.

Pervasive caching is what creates TACTIC's problem (cache hits bypass
the provider), so the *amount* of caching matters to every measured
quantity: origin load, latency, how often content routers (rather than
the origin) enforce access.  Che, Tung & Wang's approximation (IEEE
JSAC 2002) predicts an LRU cache's per-object hit probability from a
single *characteristic time* ``T_c`` solving

    C = sum_i (1 - exp(-q_i * T_c))

where ``q_i`` is object ``i``'s request rate and ``C`` the cache
capacity; then ``hit_i = 1 - exp(-q_i * T_c)``.  The tests cross-check
these predictions against the actual :class:`~repro.ndn.cs.ContentStore`
under a Zipf request stream.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def characteristic_time(
    popularities: Sequence[float],
    capacity: int,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Solve Che's fixed point for ``T_c`` by bisection.

    ``popularities`` are per-object request probabilities (or rates —
    the result simply scales); ``capacity`` is the cache size in
    objects.

    >>> tc = characteristic_time([0.5, 0.3, 0.2], capacity=2)
    >>> 0 < tc < float('inf')
    True
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if capacity >= len(popularities):
        return math.inf  # everything fits: every object always resident
    total = sum(popularities)
    if total <= 0:
        raise ValueError("popularities must sum to a positive value")

    def occupied(tc: float) -> float:
        return sum(1.0 - math.exp(-q * tc) for q in popularities)

    low, high = 0.0, 1.0
    while occupied(high) < capacity and high < 1e18:
        high *= 2.0
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        if occupied(mid) < capacity:
            low = mid
        else:
            high = mid
        if high - low < tolerance * max(1.0, high):
            break
    return (low + high) / 2.0


def hit_ratios(popularities: Sequence[float], capacity: int) -> List[float]:
    """Per-object LRU hit probabilities under Che's approximation."""
    tc = characteristic_time(popularities, capacity)
    if math.isinf(tc):
        return [1.0] * len(popularities)
    return [1.0 - math.exp(-q * tc) for q in popularities]


def aggregate_hit_ratio(popularities: Sequence[float], capacity: int) -> float:
    """Request-weighted cache hit ratio.

    >>> aggregate_hit_ratio([0.5, 0.3, 0.2], capacity=3)
    1.0
    >>> 0.0 < aggregate_hit_ratio([0.5, 0.3, 0.1, 0.05, 0.05], capacity=2) < 1.0
    True

    An empty catalog sees no requests, so its hit ratio is zero by
    convention rather than a division error.
    """
    total = sum(popularities)
    if total <= 0.0:
        return 0.0
    ratios = hit_ratios(popularities, capacity)
    return sum(q * h for q, h in zip(popularities, ratios)) / total


def zipf_popularities(num_items: int, alpha: float) -> List[float]:
    """Normalized Zipf(alpha) probabilities, rank 1 first (matches
    :class:`repro.workload.zipf.ZipfSampler`)."""
    weights = [1.0 / (rank ** alpha) for rank in range(1, num_items + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def expected_origin_load(
    request_rate: float,
    popularities: Sequence[float],
    capacity: int,
) -> float:
    """Requests/second escaping one LRU cache toward the origin —
    the provider-load prediction caching buys TACTIC."""
    return request_rate * (1.0 - aggregate_hit_ratio(popularities, capacity))
