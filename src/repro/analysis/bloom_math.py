"""Closed-form Bloom-filter saturation models (Fig. 8 / Table V).

A TACTIC router's filter is sized for ``capacity`` items at
``sizing_fpp`` and resets when its FPP estimate reaches ``max_fpp``.
Inverting the standard FPP formula p = (1 - e^(-k n / m))^k gives the
insert budget between resets:

    n_sat = -(m / k) * ln(1 - max_fpp^(1/k))

From the workload side, inserts arrive at roughly one per fresh tag a
router first validates, i.e. ``tags_per_second = clients_served *
providers_touched / tag_expiry``; combining the two predicts reset
frequency and the requests absorbed per reset — the Fig. 8 quantity.
"""

from __future__ import annotations

import math

from repro.filters.params import size_for_capacity


def inserts_to_saturation(
    capacity: int,
    max_fpp: float,
    num_hashes: int = 5,
    sizing_fpp: float = 1e-4,
) -> float:
    """Inserts a filter absorbs before its FPP estimate hits ``max_fpp``.

    >>> round(inserts_to_saturation(500, 1e-4))
    500
    >>> inserts_to_saturation(500, 1e-2) > 2.5 * inserts_to_saturation(500, 1e-4)
    True

    A reset threshold at (or beyond) certainty never triggers, so the
    budget is infinite; a filter with no hash functions never sets a
    bit and is rejected rather than reported as never-saturating.
    """
    if num_hashes <= 0:
        raise ValueError("num_hashes must be positive")
    if max_fpp <= 0.0:
        raise ValueError("max_fpp must be positive")
    if max_fpp >= 1.0:
        return math.inf
    size_bits = size_for_capacity(capacity, sizing_fpp, num_hashes)
    base = 1.0 - max_fpp ** (1.0 / num_hashes)
    return -(size_bits / num_hashes) * math.log(base)


def expected_resets(
    insert_rate: float,
    duration: float,
    capacity: int,
    max_fpp: float,
    num_hashes: int = 5,
    sizing_fpp: float = 1e-4,
) -> float:
    """Predicted number of saturation resets over ``duration`` seconds
    given a steady tag-insert rate (per router)."""
    if insert_rate <= 0 or duration <= 0:
        return 0.0
    budget = inserts_to_saturation(capacity, max_fpp, num_hashes, sizing_fpp)
    return insert_rate * duration / budget


def requests_per_reset(
    request_rate: float,
    insert_rate: float,
    capacity: int,
    max_fpp: float,
    num_hashes: int = 5,
    sizing_fpp: float = 1e-4,
) -> float:
    """The Fig. 8 quantity: requests a router receives between resets.

    Requests and inserts are coupled through the workload: every
    ``request_rate / insert_rate`` requests contribute one fresh-tag
    insert, so the request budget is the insert budget scaled by that
    ratio.
    """
    if insert_rate <= 0:
        return math.inf
    budget = inserts_to_saturation(capacity, max_fpp, num_hashes, sizing_fpp)
    return budget * request_rate / insert_rate


def tag_insert_rate(
    clients_per_router: float,
    providers_touched: float,
    tag_expiry: float,
) -> float:
    """Steady-state fresh-tag arrivals at one router: each client
    refreshes one tag per provider it uses every ``tag_expiry``."""
    if tag_expiry <= 0:
        raise ValueError("tag_expiry must be positive")
    return clients_per_router * providers_touched / tag_expiry
