"""Analytical models of TACTIC's overheads.

Closed-form counterparts to the quantities Section 8 measures by
simulation: Bloom-filter saturation budgets and reset frequencies
(Fig. 8 / Table V), registration load and revocation exposure
(Fig. 6 / Table II), and the expected router verification rate under
the F-flag collaboration (Fig. 7).  The test suite checks the
simulator against these models, so a regression in either shows up as
a disagreement.
"""

from repro.analysis.bloom_math import (
    expected_resets,
    inserts_to_saturation,
    requests_per_reset,
)
from repro.analysis.cache_math import (
    aggregate_hit_ratio,
    characteristic_time,
    expected_origin_load,
    hit_ratios,
    zipf_popularities,
)
from repro.analysis.overhead_math import (
    expected_verification_probability,
    tag_bandwidth_overhead,
)
from repro.analysis.revocation_math import (
    registration_rate,
    revocation_exposure,
)

__all__ = [
    "aggregate_hit_ratio",
    "characteristic_time",
    "expected_origin_load",
    "expected_resets",
    "expected_verification_probability",
    "hit_ratios",
    "inserts_to_saturation",
    "registration_rate",
    "requests_per_reset",
    "revocation_exposure",
    "tag_bandwidth_overhead",
    "zipf_popularities",
]
