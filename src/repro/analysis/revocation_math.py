"""Closed-form revocation-cost models (Fig. 6 / Table II).

TACTIC revokes by tag expiry, so the provider-side cost of supporting
revocation is the registration traffic, and the security cost is the
exposure window — both pure functions of the tag lifetime.
"""

from __future__ import annotations


def registration_rate(
    num_clients: int,
    providers_per_client: float,
    tag_expiry: float,
) -> float:
    """Steady-state tag-request rate Q (Fig. 6's main quantity).

    Each client keeps one live tag per provider it consumes from and
    refreshes it once per lifetime:

    >>> registration_rate(35, 2.0, 10.0)
    7.0
    >>> registration_rate(35, 2.0, 100.0)
    0.7
    """
    if tag_expiry <= 0:
        raise ValueError("tag_expiry must be positive")
    if num_clients < 0 or providers_per_client < 0:
        raise ValueError("population parameters must be non-negative")
    return num_clients * providers_per_client / tag_expiry


def revocation_exposure(tag_expiry: float) -> float:
    """Worst-case seconds a just-revoked client retains access: the
    full lifetime of a tag issued the instant before revocation."""
    if tag_expiry <= 0:
        raise ValueError("tag_expiry must be positive")
    return tag_expiry


def revocation_cost_per_client(tag_bytes: int) -> int:
    """Bytes of network traffic one revocation costs under TACTIC.

    Zero: the provider simply refuses the next registration.  (The
    constant the paper contrasts with content re-encryption [5], [10],
    [11] or network-wide metadata distribution [3], [7].)  The only
    recurring cost is the ``tag_bytes`` refresh each *surviving* client
    pays per lifetime — returned here for overhead accounting.
    """
    if tag_bytes < 0:
        raise ValueError("tag_bytes must be non-negative")
    return tag_bytes
