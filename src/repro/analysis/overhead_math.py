"""Closed-form communication/computation overhead models (Fig. 7, Table II).

The F-flag collaboration makes a content router's expected signature
work per request a function of the edge filter's false-positive
probability; the communication overhead is the fixed tag bytes each
request carries.
"""

from __future__ import annotations


def expected_verification_probability(
    edge_fpp: float,
    fraction_new_tags: float,
) -> float:
    """Probability a content router verifies a signature on one request.

    Two disjoint cases trigger verification upstream:

    - the request carries a tag the edge had not validated yet
      (``fraction_new_tags``; F = 0 and the tag misses the content
      router's filter too on first sight), or
    - the edge vouched (F = fpp > 0) and the content router re-validates
      with probability F — the paper's insurance against an edge
      false positive admitting an invalid tag.

    >>> expected_verification_probability(1e-4, 0.0)
    0.0001
    >>> expected_verification_probability(0.0, 1.0)
    1.0
    """
    if not 0.0 <= edge_fpp <= 1.0:
        raise ValueError("edge_fpp must be in [0, 1]")
    if not 0.0 <= fraction_new_tags <= 1.0:
        raise ValueError("fraction_new_tags must be in [0, 1]")
    return fraction_new_tags + (1.0 - fraction_new_tags) * edge_fpp


def tag_bandwidth_overhead(
    tag_bytes: int,
    interest_bytes: int,
) -> float:
    """Fractional request-size inflation from carrying the tag —
    TACTIC's entire per-request communication overhead (Table II's
    "Low": fixed-size, independent of client count and attributes).

    >>> round(tag_bandwidth_overhead(200, 100), 2)
    2.0
    """
    if tag_bytes < 0 or interest_bytes <= 0:
        raise ValueError("sizes must be positive")
    return tag_bytes / interest_bytes


def unauthorized_bandwidth_waste(
    attacker_request_rate: float,
    chunk_bytes: int,
    delivery_ratio: float,
    duration: float,
) -> float:
    """Bytes of content delivered to unauthorized users over a run —
    the client-side-enforcement exposure TACTIC eliminates (its routers
    hold ``delivery_ratio`` at ~0; client-side schemes sit at ~1)."""
    if min(attacker_request_rate, chunk_bytes, duration) < 0:
        raise ValueError("parameters must be non-negative")
    if not 0.0 <= delivery_ratio <= 1.0:
        raise ValueError("delivery_ratio must be in [0, 1]")
    return attacker_request_rate * duration * delivery_ratio * chunk_bytes
