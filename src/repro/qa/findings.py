"""Lint findings and their reporters."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col: CODE message`` row per finding."""
    return "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        for f in sort_findings(findings)
    )


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON array of finding objects (stable field order)."""
    return json.dumps([asdict(f) for f in sort_findings(findings)], indent=2)
