"""``python -m repro.qa.flow`` entry point."""

from __future__ import annotations

import sys

from repro.qa.flow.cli import main

if __name__ == "__main__":
    sys.exit(main())
