"""Baseline and inline-suppression filtering for simflow findings.

The baseline file (default ``.simflow-baseline.json``) is a checked-in
list of accepted findings keyed by ``(path, rule, message)`` — line
numbers are deliberately excluded so unrelated edits above a finding
don't churn the file.  ``--baseline`` mode fails only on findings *not*
in the baseline; ``--write-baseline`` refreshes it.

Inline suppressions use the same mechanics as simlint:
``# simflow: disable=SL011`` (or bare ``disable`` for all rules) on
the flagged line.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.qa.findings import Finding
from repro.qa.flow.model import ModuleSummary

DEFAULT_BASELINE = ".simflow-baseline.json"

BaselineKey = Tuple[str, str, str]


def _key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.message)


def apply_suppressions(
    findings: Iterable[Finding], modules: Dict[str, ModuleSummary]
) -> List[Finding]:
    """Drop findings whose line carries a matching ``# simflow:``."""
    by_path = {mod.path: mod for mod in modules.values()}
    kept: List[Finding] = []
    for finding in findings:
        mod = by_path.get(finding.path)
        if mod is not None:
            codes = mod.suppressions.get(finding.line, ())
            if "*" in codes or finding.rule in codes:
                continue
        kept.append(finding)
    return kept


def load_baseline(path: str) -> Counter:
    """Multiset of accepted finding keys; empty on a missing file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return Counter()
    keys: Counter = Counter()
    for entry in payload.get("findings", []):
        keys[(entry["path"], entry["rule"], entry["message"])] += 1
    return keys


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    entries = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings, key=lambda f: f.sort_key())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "findings": entries}, handle, indent=2)
        handle.write("\n")


def new_findings(
    findings: Iterable[Finding], baseline: Counter
) -> List[Finding]:
    """Findings not covered by the baseline multiset."""
    budget = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = _key(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh
