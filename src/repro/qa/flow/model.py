"""simflow's data model: per-module summaries and the report envelope.

A :class:`ModuleSummary` is everything the whole-program phase needs
to know about one file, as plain JSON-representable data — which is
what makes the incremental cache (:mod:`repro.qa.flow.cachedb`)
possible: summaries round-trip through JSON exactly, keyed by a BLAKE2
fingerprint of the source, so an unchanged file is never re-parsed.

The rule catalogue lives here too (:data:`FLOW_RULES`); findings reuse
:class:`repro.qa.findings.Finding` so all three reporters (text, JSON,
SARIF) are shared with simlint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.qa.findings import Finding

#: Bump to invalidate every cached per-module summary on schema or
#: extraction-logic changes (the cachedb folds it into the lookup key).
ANALYZER_VERSION = 1

#: The simflow rule catalogue: code -> (title, one-line description).
FLOW_RULES: Dict[str, Tuple[str, str]] = {
    "SL010": (
        "enforcement-path dominance",
        "every Data/NACK transmission site in the TACTIC router modules "
        "must be dominated by an enforcement check on every CFG path, "
        "through call-graph summaries",
    ),
    "SL011": (
        "determinism taint",
        "no interprocedural flow from wall-clock/entropy/stdlib-random "
        "sources into sim-scheduled code (helpers, aliases, default "
        "arguments, and lambdas included)",
    ),
    "SL012": (
        "worker-boundary picklability",
        "everything crossing the repro.exec process-pool boundary must "
        "be statically picklable (module-level callables, whitelisted "
        "field types on the boundary dataclasses)",
    ),
    "SL013": (
        "worker-global mutation",
        "worker-reachable code must not write module globals — worker "
        "state leaking across runs breaks the serial/parallel/cached "
        "bit-identical guarantee",
    ),
}


@dataclass(frozen=True)
class CallSite:
    """One call expression, as written (``self.bf_lookup``, ``helper``)."""

    name: str
    line: int
    col: int
    #: Dominating protector sets of this call site (populated only in
    #: modules where SL010 obligation propagation may need them).
    dom_prims: Tuple[str, ...] = ()
    dom_guards: Tuple[str, ...] = ()
    dom_calls: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SourceUse:
    """One direct use of a determinism source inside a function."""

    source: str  #: dotted source name, e.g. ``time.time``
    line: int
    col: int
    via: str  #: ``call`` | ``alias`` | ``default-arg`` | ``lambda``


@dataclass(frozen=True)
class SendSite:
    """One packet transmission call (``self.send(face, pkt, ...)``)."""

    line: int
    col: int
    packet: str  #: ``data`` | ``nack`` | ``interest`` | ``unknown``
    expr: str  #: the packet argument, as source text (for messages)
    dom_prims: Tuple[str, ...] = ()
    dom_guards: Tuple[str, ...] = ()
    dom_calls: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PoolSubmit:
    """One callable handed to a process-pool method."""

    method: str  #: e.g. ``imap_unordered``
    target_kind: str  #: ``name`` | ``attr`` | ``lambda`` | ``other``
    target: str  #: the callable expression (dotted name or excerpt)
    line: int
    col: int


@dataclass(frozen=True)
class FunctionInfo:
    """The flow-relevant facts about one function or method."""

    qualname: str  #: ``Class.method`` or plain ``func``
    name: str
    line: int
    class_name: str = ""  #: empty for module-level functions
    calls: Tuple[CallSite, ...] = ()
    sources: Tuple[SourceUse, ...] = ()
    send_sites: Tuple[SendSite, ...] = ()
    #: Protectors dominating the function's EXIT node — a call to a
    #: function whose exit is enforcement-dominated counts as an
    #: enforcement check at the call site ("call-graph summary").
    exit_prims: Tuple[str, ...] = ()
    exit_guards: Tuple[str, ...] = ()
    exit_calls: Tuple[str, ...] = ()
    global_writes: Tuple[str, ...] = ()
    pool_submits: Tuple[PoolSubmit, ...] = ()


@dataclass(frozen=True)
class FieldDecl:
    """One annotated field of a class body (for picklability checks)."""

    name: str
    annotation: str  #: the annotation as source text


@dataclass(frozen=True)
class ClassInfo:
    name: str
    line: int
    bases: Tuple[str, ...] = ()  #: terminal names of base expressions
    methods: Tuple[str, ...] = ()
    fields: Tuple[FieldDecl, ...] = ()
    is_dataclass: bool = False
    is_enum: bool = False


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the whole-program phase needs from one file."""

    path: str
    relpath: str  #: package-relative (``core/edge_router.py``)
    module: str  #: dotted module name (``repro.core.edge_router``)
    fingerprint: str  #: BLAKE2 over the source
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Tuple[FunctionInfo, ...] = ()
    classes: Tuple[ClassInfo, ...] = ()
    #: line -> disabled rule codes ("*" = all), from ``# simflow:``.
    suppressions: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    syntax_error: str = ""  #: non-empty when the file failed to parse

    # ------------------------------------------------------------------
    # JSON round-trip (the cachedb contract)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["suppressions"] = {
            str(line): list(codes) for line, codes in self.suppressions.items()
        }
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        def _strs(item: Dict[str, Any], *keys: str) -> Dict[str, Any]:
            out = dict(item)
            for key in keys:
                out[key] = tuple(out.get(key, ()))
            return out

        def _function(item: Dict[str, Any]) -> FunctionInfo:
            out = _strs(
                item, "exit_prims", "exit_guards", "exit_calls", "global_writes"
            )
            out["calls"] = tuple(
                CallSite(**_strs(c, "dom_prims", "dom_guards", "dom_calls"))
                for c in item.get("calls", ())
            )
            out["sources"] = tuple(
                SourceUse(**s) for s in item.get("sources", ())
            )
            out["send_sites"] = tuple(
                SendSite(**_strs(s, "dom_prims", "dom_guards", "dom_calls"))
                for s in item.get("send_sites", ())
            )
            out["pool_submits"] = tuple(
                PoolSubmit(**p) for p in item.get("pool_submits", ())
            )
            return FunctionInfo(**out)

        def _klass(item: Dict[str, Any]) -> ClassInfo:
            out = _strs(item, "bases", "methods")
            out["fields"] = tuple(FieldDecl(**f) for f in item.get("fields", ()))
            return ClassInfo(**out)

        return cls(
            path=payload["path"],
            relpath=payload["relpath"],
            module=payload["module"],
            fingerprint=payload["fingerprint"],
            imports=dict(payload.get("imports", {})),
            functions=tuple(_function(f) for f in payload.get("functions", ())),
            classes=tuple(_klass(k) for k in payload.get("classes", ())),
            suppressions={
                int(line): tuple(codes)
                for line, codes in payload.get("suppressions", {}).items()
            },
            syntax_error=payload.get("syntax_error", ""),
        )


@dataclass
class FlowReport:
    """The analysis result: findings plus provenance/cost statistics."""

    findings: List[Finding] = field(default_factory=list)
    #: new findings after baseline filtering (``None`` = no baseline)
    new_findings: Optional[List[Finding]] = None
    modules_total: int = 0
    modules_parsed: int = 0
    modules_cached: int = 0
    wall_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def stats(self) -> Dict[str, Any]:
        return {
            "modules_total": self.modules_total,
            "modules_parsed": self.modules_parsed,
            "modules_cached": self.modules_cached,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "findings": len(self.findings),
            "new_findings": (
                len(self.new_findings) if self.new_findings is not None else None
            ),
        }
