"""SL011 — interprocedural determinism taint.

Lexical SL001/SL002 flag a literal ``time.time()`` inside a
sim-affecting module.  What they cannot see is *laundering*: a helper
in a non-sim module that wall-clocks, called (possibly through more
helpers) from sim-scheduled code; an alias (``clock = time.time``); a
source evaluated in a default argument; or one buried in a lambda.

The analysis: every function with a direct determinism source is
tainted, and taint propagates to callers over **precise** call edges
only (bare names, import bindings, ``self.`` within the class
hierarchy) — name-union edges would chain unrelated same-named
methods into false positives.  Findings are reported at the
*boundary*: a sim-scope function calling a tainted function that lives
outside sim scope (with the full chain down to the source), plus
direct non-plain uses (alias / default-arg / lambda) inside sim scope.
Plain direct calls in sim scope are left to SL001/SL002 so each leak
is reported exactly once.

Sanctioned modules neither source nor carry taint: ``sim/rng.py`` (the
seeded-stream façade — deliberate, reviewed entropy) and the ``obs/``
observability layer (wall-clock profiling is its job; sim code calls
it for accounting, never for simulated time).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.qa.findings import Finding
from repro.qa.flow.callgraph import FuncKey, Program
from repro.qa.rules import SIM_AFFECTING_PREFIXES

#: Modules allowed to touch wall clocks / OS entropy.
SANCTIONED_EXACT = frozenset({"sim/rng.py"})
SANCTIONED_PREFIXES = ("obs/",)

#: ``via`` values SL001/SL002 already handle — skip in sim scope.
_LEXICALLY_VISIBLE = frozenset({"call"})


def _sanctioned(relpath: str) -> bool:
    return relpath in SANCTIONED_EXACT or relpath.startswith(
        SANCTIONED_PREFIXES
    )


def _sim_scope(relpath: str) -> bool:
    """Mirrors the simlint scope rule: sim-affecting package prefixes,
    plus bare filenames (fixtures) which are always in scope."""
    return relpath.startswith(SIM_AFFECTING_PREFIXES) or "/" not in relpath


def _taint_chains(program: Program) -> Dict[FuncKey, Tuple[str, ...]]:
    """Function -> human-readable chain from it down to a source."""
    chains: Dict[FuncKey, Tuple[str, ...]] = {}
    worklist: List[FuncKey] = []
    for key, func in program.functions.items():
        relpath, _ = key
        if _sanctioned(relpath):
            continue
        if func.sources:
            src = func.sources[0]
            chains[key] = (
                f"{func.qualname} ({relpath}:{src.line}) uses "
                f"{src.source} [{src.via}]",
            )
            worklist.append(key)

    callers = program.precise_callers()
    while worklist:
        key = worklist.pop()
        for caller_key in callers.get(key, ()):
            if caller_key in chains:
                continue
            caller_relpath, _ = caller_key
            if _sanctioned(caller_relpath):
                continue
            caller = program.functions[caller_key]
            callee = program.functions[key]
            chains[caller_key] = (
                f"{caller.qualname} ({caller_relpath}) calls "
                f"{callee.qualname}",
            ) + chains[key]
            worklist.append(caller_key)
    return chains


def check_sl011(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    chains = _taint_chains(program)

    for key, func in sorted(program.functions.items()):
        relpath, _ = key
        if not _sim_scope(relpath) or _sanctioned(relpath):
            continue
        mod = program.modules[relpath]

        # Direct uses lexical rules cannot see.
        for src in func.sources:
            if src.via in _LEXICALLY_VISIBLE:
                continue
            findings.append(
                Finding(
                    path=mod.path,
                    line=src.line,
                    col=src.col,
                    rule="SL011",
                    message=(
                        f"determinism source {src.source} reaches "
                        f"sim-scheduled code in {func.qualname} via "
                        f"{src.via} — route it through the seeded RNG "
                        f"registry (sim/rng.py) or the sim clock"
                    ),
                )
            )

        # Boundary crossings: sim scope -> tainted non-sim callee.
        seen_targets: Set[FuncKey] = set()
        for call in func.calls:
            for target in program.resolve_precise(key, call.name):
                if target in seen_targets:
                    continue
                seen_targets.add(target)
                target_relpath, _ = target
                if _sim_scope(target_relpath):
                    continue  # inner boundary reports it instead
                chain = chains.get(target)
                if chain is None:
                    continue
                findings.append(
                    Finding(
                        path=mod.path,
                        line=call.line,
                        col=call.col,
                        rule="SL011",
                        message=(
                            f"{func.qualname} launders a determinism "
                            f"source through {call.name}: "
                            + " -> ".join(chain)
                        ),
                    )
                )
    return findings
