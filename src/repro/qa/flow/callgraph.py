"""The whole-program linking phase: symbol table + call graph.

:class:`Program` ties the per-module summaries together.  Call
resolution works at two precision levels, and each analysis picks the
one whose failure mode is safe for it:

- **Precise edges** (:meth:`Program.resolve_precise`): a call resolves
  only when the binding is unambiguous — a bare name defined in the
  same module, an import-table binding to a project module, or a
  ``self.method`` lookup within the receiver class and its project
  base classes (MRO-ish, left-to-right).  Used by the SL011 taint
  analysis, where a spurious edge would create false taint chains.
- **Name-union edges** (:meth:`Program.resolve_union`): an attribute
  call like ``handler.deliver(...)`` resolves to *every* project
  function with that terminal name.  Used by SL010 obligation
  propagation, where missing an edge would silently discharge an
  enforcement obligation — over-approximation is the safe direction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.qa.flow.model import ClassInfo, FunctionInfo, ModuleSummary

#: ``(relpath, qualname)`` — the stable identity of a function.
FuncKey = Tuple[str, str]


class Program:
    """Symbol table + call graph over a set of module summaries."""

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            mod.relpath: mod for mod in modules
        }
        #: (relpath, qualname) -> FunctionInfo
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        #: terminal function/method name -> keys bearing it
        self.by_name: Dict[str, List[FuncKey]] = {}
        #: dotted module name -> relpath
        self.by_module: Dict[str, str] = {}
        #: (relpath, class name) -> ClassInfo
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        #: class name -> [(relpath, ClassInfo)] (project-wide)
        self.classes_by_name: Dict[str, List[Tuple[str, ClassInfo]]] = {}

        for mod in self.modules.values():
            if mod.module:
                self.by_module[mod.module] = mod.relpath
            for func in mod.functions:
                key = (mod.relpath, func.qualname)
                self.functions[key] = func
                self.by_name.setdefault(func.name, []).append(key)
            for klass in mod.classes:
                self.classes[(mod.relpath, klass.name)] = klass
                self.classes_by_name.setdefault(klass.name, []).append(
                    (mod.relpath, klass)
                )

        self._reverse: Optional[Dict[FuncKey, Set[FuncKey]]] = None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_precise(self, caller: FuncKey, call_name: str) -> List[FuncKey]:
        """Unambiguous targets of ``call_name`` made from ``caller``."""
        relpath, qualname = caller
        mod = self.modules[relpath]
        head, _, rest = call_name.partition(".")

        # ``self.method()`` / ``cls.method()``: search the receiver's
        # class, then its project bases, left to right.
        if head in ("self", "cls") and rest and "." not in rest:
            caller_func = self.functions[caller]
            if caller_func.class_name:
                hit = self._lookup_method(
                    relpath, caller_func.class_name, rest
                )
                return [hit] if hit else []
            return []

        # Bare name: same-module function, else an import binding.
        if not rest:
            key = (relpath, head)
            if key in self.functions:
                return [key]
            target = mod.imports.get(head)
            if target:
                return self._resolve_dotted(target)
            return []

        # Dotted through an imported module: ``helpers.jitter()``.
        target = mod.imports.get(head)
        if target:
            return self._resolve_dotted(f"{target}.{rest}")
        return self._resolve_dotted(call_name)

    def _resolve_dotted(self, dotted: str) -> List[FuncKey]:
        """``repro.x.y.func`` -> the module-level function, if ours."""
        module_part, _, func_name = dotted.rpartition(".")
        if not module_part or not func_name:
            return []
        relpath = self.by_module.get(module_part)
        if relpath is None:
            # ``from repro.x.y import func`` stores the full dotted
            # path; also try treating the whole thing as a module ref
            # re-exported through a package __init__.
            return []
        key = (relpath, func_name)
        return [key] if key in self.functions else []

    def _lookup_method(
        self, relpath: str, class_name: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FuncKey]:
        seen = _seen if _seen is not None else set()
        if class_name in seen:
            return None
        seen.add(class_name)
        candidates = []
        if (relpath, class_name) in self.classes:
            candidates.append((relpath, self.classes[(relpath, class_name)]))
        else:
            candidates.extend(self.classes_by_name.get(class_name, ()))
        for owner_relpath, klass in candidates:
            key = (owner_relpath, f"{klass.name}.{method}")
            if key in self.functions:
                return key
            for base in klass.bases:
                hit = self._lookup_method(owner_relpath, base, method, seen)
                if hit:
                    return hit
        return None

    def resolve_union(self, call_name: str) -> List[FuncKey]:
        """Every project function whose terminal name matches."""
        terminal = call_name.split(".")[-1]
        return list(self.by_name.get(terminal, ()))

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def precise_callees(self, caller: FuncKey) -> Set[FuncKey]:
        out: Set[FuncKey] = set()
        func = self.functions[caller]
        for call in func.calls:
            out.update(self.resolve_precise(caller, call.name))
        return out

    def precise_callers(self) -> Dict[FuncKey, Set[FuncKey]]:
        """Reverse precise call graph (memoised)."""
        if self._reverse is None:
            reverse: Dict[FuncKey, Set[FuncKey]] = {
                key: set() for key in self.functions
            }
            for caller in self.functions:
                for callee in self.precise_callees(caller):
                    reverse[callee].add(caller)
            self._reverse = reverse
        return self._reverse

    def union_callers(self, target: FuncKey) -> Set[FuncKey]:
        """Callers by terminal-name match — the over-approximation SL010
        needs so an obligation is never silently dropped."""
        _, qualname = target
        method = qualname.split(".")[-1]
        out: Set[FuncKey] = set()
        for caller_key, func in self.functions.items():
            if caller_key == target:
                continue
            for call in func.calls:
                if call.name.split(".")[-1] == method:
                    out.add(caller_key)
                    break
        return out
