"""simflow: whole-program flow analysis over the simulator sources.

Where simlint (:mod:`repro.qa.lint`) is lexical and per-file, simflow
is *interprocedural*: it builds a per-function control-flow graph for
every function in the tree (:mod:`repro.qa.flow.cfg`), summarises each
module into plain data (:mod:`repro.qa.flow.extract`), links the
summaries into a project-wide symbol table and call graph
(:mod:`repro.qa.flow.callgraph`), and then runs three flow analyses:

- **SL010** (:mod:`repro.qa.flow.dominance`) — every Data/NACK
  transmission site in the TACTIC router modules must be dominated by
  an enforcement decision on every CFG path, through call-graph
  summaries.
- **SL011** (:mod:`repro.qa.flow.taint`) — interprocedural
  determinism taint from wall-clock/entropy sources into sim-scheduled
  code, catching laundering through helpers, aliases, default
  arguments, and lambdas that lexical SL001/SL002 miss.
- **SL012/SL013** (:mod:`repro.qa.flow.picklability`) — everything
  crossing the ``repro.exec`` process-pool boundary must be statically
  picklable, and worker-reachable code must not mutate module globals.

Per-module summaries are cached under a BLAKE2-over-source fingerprint
(:mod:`repro.qa.flow.cachedb`) — the same content-address discipline
as the run cache — so a no-change re-run skips parsing entirely.
Findings are reported as text, JSON, or SARIF
(:mod:`repro.qa.flow.reporters`), filtered against a checked-in
baseline with inline ``# simflow: disable=`` suppressions
(:mod:`repro.qa.flow.baseline`).

Entry point: ``python -m repro.qa.flow`` (see
:mod:`repro.qa.flow.cli`); docs in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

from repro.qa.flow.callgraph import Program
from repro.qa.flow.cli import analyze_paths, build_parser, main
from repro.qa.flow.model import (
    ANALYZER_VERSION,
    FLOW_RULES,
    FlowReport,
    ModuleSummary,
)

__all__ = [
    "ANALYZER_VERSION",
    "FLOW_RULES",
    "FlowReport",
    "ModuleSummary",
    "Program",
    "analyze_paths",
    "build_parser",
    "main",
]
