"""Fingerprint-keyed incremental cache of per-module summaries.

Same content-address discipline as the run cache
(:mod:`repro.exec.cache`): the key is BLAKE2 over the file's source
plus :data:`~repro.qa.flow.model.ANALYZER_VERSION`, so both an edited
file and an upgraded extractor miss cleanly.  Entries are plain JSON
(the :meth:`ModuleSummary.to_json_dict` round-trip), written atomically
via temp-file + rename so a crashed run never leaves a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.qa.flow.model import ANALYZER_VERSION, ModuleSummary

#: Environment override for the cache directory.
CACHE_ENV = "REPRO_FLOW_CACHE"
DEFAULT_CACHE_DIR = ".simflow-cache"


def resolve_cache_dir(explicit: Optional[str] = None) -> str:
    return explicit or os.environ.get(CACHE_ENV) or DEFAULT_CACHE_DIR


class SummaryCache:
    """Disk cache: ``<dir>/<fingerprint>-v<version>.json`` per module."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    def _entry_path(self, fingerprint: str) -> str:
        return os.path.join(
            self.cache_dir, f"{fingerprint}-v{ANALYZER_VERSION}.json"
        )

    def get(self, fingerprint: str) -> Optional[ModuleSummary]:
        path = self._entry_path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json_dict(payload)
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self._entry_path(summary.fingerprint)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(summary.to_json_dict(), handle)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


class NullCache(SummaryCache):
    """``--no-cache``: always miss, never write."""

    def __init__(self) -> None:
        super().__init__(cache_dir="")

    def get(self, fingerprint: str) -> Optional[ModuleSummary]:
        self.misses += 1
        return None

    def put(self, summary: ModuleSummary) -> None:
        return None
