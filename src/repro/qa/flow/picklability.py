"""SL012/SL013 — safety of the ``repro.exec`` process-pool boundary.

Everything that crosses into a worker is pickled: the submitted
callable, its payload (:class:`ScenarioSpec`), and the result envelope
(``RunSummary``).  A lambda, a bound method, or a field typed with a
lock/handle/callable fails at runtime — in the *parallel* path only,
which is exactly the path local quick runs skip.  SL012 checks the
boundary statically:

- every callable handed to a pool fan-out method must resolve to a
  module-level project function (lambdas and bound methods are not
  picklable by name);
- every annotated field on the boundary dataclasses must be built from
  whitelisted scalar/container types, enums, or other project
  dataclasses (checked recursively).

SL013 protects the serial/parallel/cached bit-identical guarantee from
hidden worker state: starting from the pool-submitted callables, it
walks the precise call graph and flags any ``global`` write in
worker-reachable code — a module global mutated in a worker leaks
state across runs scheduled onto the same pool process.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.qa.findings import Finding
from repro.qa.flow.callgraph import FuncKey, Program
from repro.qa.flow.model import ClassInfo

#: Dataclasses whose instances cross the pool boundary.
BOUNDARY_CLASSES = ("ScenarioSpec", "RunSummary")

#: Annotation identifiers that are always picklable.
PICKLABLE_TERMINALS = frozenset(
    {
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "None",
        "Any",
        "Optional",
        "Union",
        "Tuple",
        "List",
        "Dict",
        "Set",
        "FrozenSet",
        "Sequence",
        "Mapping",
        "Iterable",
        "tuple",
        "list",
        "dict",
        "set",
        "frozenset",
        "typing",
        "Literal",
        "Path",  # pathlib paths pickle fine
    }
)

#: Identifiers that are categorically unpicklable across processes.
UNPICKLABLE_TERMINALS = frozenset(
    {
        "Callable",
        "Lambda",
        "Generator",
        "Iterator",
        "IO",
        "TextIO",
        "BinaryIO",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Thread",
        "Queue",
        "socket",
        "Socket",
        "Pool",
        "Process",
    }
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _annotation_terminals(annotation: str) -> List[str]:
    """Every identifier in an annotation string, terminal segment only
    (``typing.Optional`` -> ``Optional``)."""
    out = []
    for token in _IDENT_RE.findall(annotation):
        out.append(token.split(".")[-1])
    return out


def _field_verdict(
    program: Program, annotation: str, stack: Set[str]
) -> str:
    """Empty string when picklable, else the offending identifier."""
    for terminal in _annotation_terminals(annotation):
        if terminal in UNPICKLABLE_TERMINALS:
            return terminal
        if terminal in PICKLABLE_TERMINALS:
            continue
        owners = program.classes_by_name.get(terminal)
        if owners:
            if terminal in stack:
                continue  # recursive type — already being checked
            _, klass = owners[0]
            if klass.is_enum:
                continue
            if klass.is_dataclass:
                verdict = _class_verdict(program, klass, stack | {terminal})
                if verdict:
                    return verdict
                continue
            return terminal  # arbitrary project class: not vetted
        # Unknown identifier (stdlib/3rd-party): trust it — the rule
        # exists to catch the categorical offenders above and project
        # classes that were never vetted.
    return ""


def _class_verdict(program: Program, klass: ClassInfo, stack: Set[str]) -> str:
    for field in klass.fields:
        verdict = _field_verdict(program, field.annotation, stack)
        if verdict:
            return verdict
    return ""


def check_sl012(program: Program) -> List[Finding]:
    findings: List[Finding] = []

    # Pool-submitted callables.
    for key, func in sorted(program.functions.items()):
        relpath, _ = key
        mod = program.modules[relpath]
        for submit in func.pool_submits:
            if submit.target_kind == "lambda":
                findings.append(
                    Finding(
                        path=mod.path,
                        line=submit.line,
                        col=submit.col,
                        rule="SL012",
                        message=(
                            f"lambda submitted to pool.{submit.method} "
                            "is not picklable — hoist it to a "
                            "module-level function"
                        ),
                    )
                )
                continue
            targets = program.resolve_precise(key, submit.target)
            if not targets:
                continue  # stdlib/external callable: out of reach
            target_func = program.functions[targets[0]]
            if target_func.class_name:
                findings.append(
                    Finding(
                        path=mod.path,
                        line=submit.line,
                        col=submit.col,
                        rule="SL012",
                        message=(
                            f"pool.{submit.method} target "
                            f"{target_func.qualname} is a method — "
                            "bound methods drag their instance across "
                            "the pickle boundary; use a module-level "
                            "function"
                        ),
                    )
                )

    # Boundary dataclass fields.
    for class_name in BOUNDARY_CLASSES:
        for relpath, klass in program.classes_by_name.get(class_name, ()):
            mod = program.modules[relpath]
            for field in klass.fields:
                verdict = _field_verdict(
                    program, field.annotation, {class_name}
                )
                if verdict:
                    findings.append(
                        Finding(
                            path=mod.path,
                            line=klass.line,
                            col=1,
                            rule="SL012",
                            message=(
                                f"{class_name}.{field.name}: "
                                f"{field.annotation} crosses the worker "
                                f"boundary but `{verdict}` is not "
                                "statically picklable"
                            ),
                        )
                    )
    return findings


def worker_reachable(program: Program) -> Set[FuncKey]:
    """BFS over precise call edges from every pool-submitted callable."""
    roots: Set[FuncKey] = set()
    for key, func in program.functions.items():
        for submit in func.pool_submits:
            roots.update(program.resolve_precise(key, submit.target))
    reachable: Set[FuncKey] = set()
    worklist = list(roots)
    while worklist:
        key = worklist.pop()
        if key in reachable:
            continue
        reachable.add(key)
        worklist.extend(program.precise_callees(key))
    return reachable


def check_sl013(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    for key in sorted(worker_reachable(program)):
        func = program.functions[key]
        if not func.global_writes:
            continue
        relpath, _ = key
        mod = program.modules[relpath]
        for name in func.global_writes:
            findings.append(
                Finding(
                    path=mod.path,
                    line=func.line,
                    col=1,
                    rule="SL013",
                    message=(
                        f"worker-reachable {func.qualname} declares "
                        f"`global {name}` — module-global mutation in a "
                        "pool worker leaks state across runs and breaks "
                        "the serial/parallel/cached bit-identical "
                        "guarantee"
                    ),
                )
            )
    return findings
