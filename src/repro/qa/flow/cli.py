"""The simflow driver and CLI.

Usage::

    python -m repro.qa.flow                       # whole package, text
    python -m repro.qa.flow src/repro --format sarif
    python -m repro.qa.flow --baseline            # fail on NEW findings
    python -m repro.qa.flow --write-baseline      # accept current state
    python -m repro.qa.flow --select SL011 --no-cache
    python -m repro.qa.flow --list-rules

Exit codes: 0 clean (or fully baseline-covered), 1 findings, 2 usage.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.qa.findings import Finding, sort_findings
from repro.qa.flow.baseline import (
    DEFAULT_BASELINE,
    apply_suppressions,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.qa.flow.cachedb import NullCache, SummaryCache, resolve_cache_dir
from repro.qa.flow.callgraph import Program
from repro.qa.flow.dominance import check_sl010
from repro.qa.flow.extract import extract_module, source_fingerprint
from repro.qa.flow.model import FLOW_RULES, FlowReport, ModuleSummary
from repro.qa.flow.picklability import check_sl012, check_sl013
from repro.qa.flow.reporters import report_json, report_sarif, report_text
from repro.qa.flow.taint import check_sl011
from repro.qa.lint import iter_python_files

#: Default analysis root: the installed ``repro`` package source tree.
PACKAGE_ROOT = str(Path(__file__).resolve().parents[2])

_CHECKS = {
    "SL010": check_sl010,
    "SL011": check_sl011,
    "SL012": check_sl012,
    "SL013": check_sl013,
}


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    cache: Optional[SummaryCache] = None,
) -> FlowReport:
    """Run the whole pipeline: extract (cached) -> link -> analyses."""
    wall_start = time.perf_counter()
    cache = cache if cache is not None else NullCache()
    report = FlowReport()
    phase = report.phase_seconds

    t0 = time.perf_counter()
    modules: Dict[str, ModuleSummary] = {}
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        fingerprint = source_fingerprint(source)
        summary = cache.get(fingerprint)
        # Same resolved file (spelled relative or absolute) is a hit;
        # a different file with colliding content must re-extract so
        # relpath-scoped rules see the right module identity.
        if summary is not None and (
            summary.path == str(path)
            or Path(summary.path).resolve() == path.resolve()
        ):
            report.modules_cached += 1
        else:
            summary = extract_module(str(path), source)
            cache.put(summary)
            report.modules_parsed += 1
        modules[summary.relpath] = summary
        if summary.syntax_error:
            findings.append(
                Finding(
                    path=summary.path,
                    line=1,
                    col=1,
                    rule="SL000",
                    message=f"syntax error: {summary.syntax_error}",
                )
            )
    report.modules_total = len(modules)
    phase["extract"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    program = Program(modules.values())
    program.precise_callers()  # force the reverse-graph build here
    phase["link"] = time.perf_counter() - t0

    for code, check in _CHECKS.items():
        if select is not None and code not in select:
            continue
        t0 = time.perf_counter()
        findings.extend(check(program))
        phase[code.lower()] = time.perf_counter() - t0

    report.findings = sort_findings(apply_suppressions(findings, modules))
    report.wall_seconds = time.perf_counter() - wall_start
    return report


def list_rules() -> str:
    lines = ["simflow rules:"]
    for code, (title, description) in FLOW_RULES.items():
        lines.append(f"  {code}  {title}")
        lines.append(f"         {description}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.qa.flow",
        description=(
            "Whole-program flow analysis over the simulator sources "
            "(simflow)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help=f"files or directories to analyze (default: {PACKAGE_ROOT})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=(
            "compare against a baseline file and fail only on NEW "
            f"findings (default file: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help="accept the current findings into the baseline file",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "summary cache directory (default: $REPRO_FLOW_CACHE or "
            ".simflow-cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental summary cache",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    select: Optional[Set[str]] = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        unknown = select - set(FLOW_RULES)
        if unknown:
            print(f"unknown rule codes: {sorted(unknown)}", file=sys.stderr)
            return 2

    paths = args.paths or [PACKAGE_ROOT]
    cache: SummaryCache = (
        NullCache()
        if args.no_cache
        else SummaryCache(resolve_cache_dir(args.cache_dir))
    )
    report = analyze_paths(paths, select=select, cache=cache)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"simflow: wrote {len(report.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        report.new_findings = new_findings(report.findings, baseline)

    render = {
        "text": report_text,
        "json": report_json,
        "sarif": report_sarif,
    }[args.format]
    print(render(report))

    gating = (
        report.new_findings
        if report.new_findings is not None
        else report.findings
    )
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
