"""Per-function control-flow graphs and dominator sets.

One :class:`Cfg` per function body.  Nodes are *statements* (plus the
test expression of each branch/loop head, so conditions can dominate),
with two virtual nodes: ``ENTRY`` (0) and ``EXIT`` (1).  Every
``return``/``raise`` edge lands on ``EXIT``; the fall-through end of
the body does too.

``try`` is handled conservatively: every statement lowered inside a
``try`` body gains an edge to each handler's entry, so a handler is
reachable from any point in the protected region.  Conservatism here
only *removes* dominators — the safe direction for SL010, which treats
an undominated transmission site as a finding.

Dominators come from the classic iterative data-flow
(``dom(n) = {n} ∪ ⋂ dom(pred)``), which converges fast on the small,
reducible CFGs Python function bodies produce.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

ENTRY = 0
EXIT = 1


class Assume:
    """A branch-direction pseudo-node: ``test`` held ``value``.

    An ``if`` lowers to ``test -> assume(True) -> body`` and
    ``test -> assume(False) -> orelse``, so a statement dominated by an
    ``Assume`` is reached only when the condition resolved that way —
    the polarity information plain test-node dominance cannot give.
    The join point after the ``if`` is dominated by neither assume.
    """

    __slots__ = ("test", "value")

    def __init__(self, test: ast.expr, value: bool) -> None:
        self.test = test
        self.value = value


class Cfg:
    """A statement-level control-flow graph for one function body."""

    def __init__(self) -> None:
        #: Node id -> AST node or :class:`Assume` (``None`` for the two
        #: virtual nodes).
        self.nodes: List[Optional[object]] = [None, None]
        self.succs: List[Set[int]] = [set(), set()]

    def add_node(self, node: object) -> int:
        self.nodes.append(node)
        self.succs.append(set())
        return len(self.nodes) - 1

    def add_edge(self, src: int, dst: int) -> None:
        self.succs[src].add(dst)

    def preds(self) -> List[Set[int]]:
        out: List[Set[int]] = [set() for _ in self.nodes]
        for src, dsts in enumerate(self.succs):
            for dst in dsts:
                out[dst].add(src)
        return out

    # ------------------------------------------------------------------
    # Dominators
    # ------------------------------------------------------------------
    def dominators(self) -> List[Set[int]]:
        """``dom[n]`` = node ids dominating ``n`` (including ``n``).

        Unreachable nodes keep the full set (vacuous dominance), which
        is harmless: an unreachable transmission site cannot execute.
        """
        preds = self.preds()
        everything = set(range(len(self.nodes)))
        dom: List[Set[int]] = [set(everything) for _ in self.nodes]
        dom[ENTRY] = {ENTRY}
        changed = True
        while changed:
            changed = False
            for node in range(2, len(self.nodes)):
                incoming = [dom[p] for p in preds[node]]
                fresh = set.intersection(*incoming) if incoming else set(everything)
                fresh = fresh | {node}
                if fresh != dom[node]:
                    dom[node] = fresh
                    changed = True
        # EXIT last: its preds may include late nodes.
        incoming = [dom[p] for p in preds[EXIT]]
        dom[EXIT] = (set.intersection(*incoming) if incoming else set()) | {EXIT}
        return dom


class _Loop:
    """Break/continue targets for the innermost enclosing loop."""

    def __init__(self, head: int) -> None:
        self.head = head
        self.breaks: Set[int] = set()


class _Builder:
    def __init__(self) -> None:
        self.cfg = Cfg()
        self.loops: List[_Loop] = []
        #: Entry node of each active handler, for try-body edges.
        self.handler_entries: List[List[int]] = []

    # `preds` is the set of nodes that fall through into the next
    # statement; an empty set means the path already terminated.
    def lower_body(self, stmts: Sequence[ast.stmt], preds: Set[int]) -> Set[int]:
        for stmt in stmts:
            preds = self.lower_stmt(stmt, preds)
        return preds

    def _new(self, node: object, preds: Set[int]) -> int:
        nid = self.cfg.add_node(node)
        for pred in preds:
            self.cfg.add_edge(pred, nid)
        # A statement in a try body may raise into any active handler.
        for entries in self.handler_entries:
            entries.append(nid)
        return nid

    def lower_stmt(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            nid = self._new(stmt, preds)
            self.cfg.add_edge(nid, EXIT)
            return set()
        if isinstance(stmt, ast.Break):
            nid = self._new(stmt, preds)
            if self.loops:
                self.loops[-1].breaks.add(nid)
            return set()
        if isinstance(stmt, ast.Continue):
            nid = self._new(stmt, preds)
            if self.loops:
                self.cfg.add_edge(nid, self.loops[-1].head)
            return set()
        if isinstance(stmt, ast.If):
            test = self._new(stmt.test, preds)
            assume_t = self._new(Assume(stmt.test, True), {test})
            assume_f = self._new(Assume(stmt.test, False), {test})
            then_out = self.lower_body(stmt.body, {assume_t})
            else_out = self.lower_body(stmt.orelse, {assume_f})
            return then_out | else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            head = self._new(head_expr, preds)
            loop = _Loop(head)
            self.loops.append(loop)
            body_out = self.lower_body(stmt.body, {head})
            for nid in body_out:
                self.cfg.add_edge(nid, head)
            self.loops.pop()
            normal_exit = self.lower_body(stmt.orelse, {head})
            return normal_exit | loop.breaks
        if isinstance(stmt, ast.Try):
            head = self._new(stmt, preds)
            body_entries: List[int] = []
            self.handler_entries.append(body_entries)
            body_out = self.lower_body(stmt.body, {head})
            self.handler_entries.pop()
            outs = set(body_out)
            raisers = {head} | set(body_entries)
            for handler in stmt.handlers:
                outs |= self.lower_body(handler.body, set(raisers))
            outs |= self.lower_body(stmt.orelse, set(body_out))
            if stmt.finalbody:
                outs = self.lower_body(stmt.finalbody, outs or {head})
            return outs
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._new(stmt, preds)
            return self.lower_body(stmt.body, {head})
        if isinstance(stmt, ast.Match):
            subject = self._new(stmt.subject, preds)
            outs: Set[int] = {subject}  # no case may match
            for case in stmt.cases:
                outs |= self.lower_body(case.body, {subject})
            return outs
        # Everything else — assignments, expression statements, nested
        # defs (opaque), imports, global/nonlocal, pass, assert — is a
        # single straight-line node.
        nid = self._new(stmt, preds)
        return {nid}


def build_cfg(func: ast.AST) -> Cfg:
    """The CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _Builder()
    body = getattr(func, "body", [])
    out = builder.lower_body(body, {ENTRY})
    for nid in out:
        builder.cfg.add_edge(nid, EXIT)
    if not builder.cfg.succs[ENTRY] and len(builder.cfg.nodes) == 2:
        builder.cfg.add_edge(ENTRY, EXIT)  # empty body
    return builder.cfg


def strict_dominators(cfg: Cfg) -> Tuple[Dict[int, Set[int]], Set[int]]:
    """``(site -> strict dominators, strict dominators of EXIT)``.

    Convenience over :meth:`Cfg.dominators` that strips each node's
    self-entry and the virtual nodes, leaving only *real* AST nodes a
    caller can classify.
    """
    dom = cfg.dominators()
    virtual = {ENTRY, EXIT}
    per_node: Dict[int, Set[int]] = {}
    for nid in range(2, len(cfg.nodes)):
        per_node[nid] = dom[nid] - {nid} - virtual
    exit_dom = dom[EXIT] - virtual
    return per_node, exit_dom
