"""SL010 — enforcement-path dominance over the TACTIC router modules.

The TACTIC property: no Data/NACK leaves a router unless an
enforcement decision dominates the transmission on *every* CFG path.
A transmission site is discharged when one of these dominates it:

- an **enforcement primitive** call (BF lookup/insert, signature
  verify, the edge/content prechecks, ``record_decision`` with a
  literal kind — SL008 separately polices registry membership);
- a **protocol-state guard** branch test (``.nack`` / ``.access_level``
  inspection, ``is_tag_response()`` / ``is_registration()``), which
  honours a decision made upstream and carried in the packet;
- a call to an **enforcing function** — one whose own exit is
  dominated by a primitive/guard (computed as a fixpoint, so chains of
  helpers count: this is the "call-graph summary").

A site discharged by none of those propagates its obligation to the
enclosing function's callers: every call site of that function must
itself be dominated.  Callers are resolved by *name union* (every
project method with the same terminal name) so an obligation is never
dropped by a resolution miss.  A function with no project callers is a
framework entry point (``on_interest``/``on_data``) — the obligation
has nowhere left to go and becomes a finding naming the original
transmission site and what was missing.  Call cycles discharge
optimistically (the obligation re-enters the cycle's entry edge).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.qa.findings import Finding
from repro.qa.flow.callgraph import FuncKey, Program
from repro.qa.flow.model import FunctionInfo, SendSite

#: Modules whose transmission sites carry the SL010 obligation.  Bare
#: filenames (test fixtures outside any package) are always in scope.
ROUTER_MODULES = frozenset(
    {
        "core/edge_router.py",
        "core/content_router.py",
        "core/intermediate_router.py",
        "core/core_router.py",
    }
)

#: Packet kinds that carry content or denial — Interests don't serve.
_GUARDED_PACKETS = frozenset({"data", "nack", "unknown"})


def _in_scope(relpath: str) -> bool:
    return relpath in ROUTER_MODULES or "/" not in relpath


def _enforcing_functions(program: Program) -> Set[FuncKey]:
    """Fixpoint: exit dominated by a primitive/guard, or by a call to
    an already-enforcing function."""
    enforcing: Set[FuncKey] = {
        key
        for key, func in program.functions.items()
        if func.exit_prims or func.exit_guards
    }
    changed = True
    while changed:
        changed = False
        enforcing_names = {
            program.functions[key].name for key in enforcing
        }
        for key, func in program.functions.items():
            if key in enforcing:
                continue
            if any(name in enforcing_names for name in func.exit_calls):
                enforcing.add(key)
                changed = True
    return enforcing


def _site_guarded(
    prims: Tuple[str, ...],
    guards: Tuple[str, ...],
    calls: Tuple[str, ...],
    enforcing_names: Set[str],
) -> bool:
    if prims or guards:
        return True
    return any(name in enforcing_names for name in calls)


def check_sl010(program: Program) -> List[Finding]:
    findings: List[Finding] = []
    enforcing = _enforcing_functions(program)
    enforcing_names = {program.functions[key].name for key in enforcing}

    for key, func in sorted(program.functions.items()):
        relpath, _ = key
        if not _in_scope(relpath):
            continue
        for site in func.send_sites:
            if site.packet not in _GUARDED_PACKETS:
                continue
            if _site_guarded(
                site.dom_prims, site.dom_guards, site.dom_calls, enforcing_names
            ):
                continue
            finding = _propagate(program, key, site, enforcing_names)
            if finding is not None:
                findings.append(finding)
    return findings


def _propagate(
    program: Program,
    origin: FuncKey,
    site: SendSite,
    enforcing_names: Set[str],
) -> "Finding | None":
    """Walk the obligation up the caller graph; a finding means some
    entry path reaches the site with no dominating enforcement."""
    visited: Set[FuncKey] = set()

    def discharged(key: FuncKey) -> Tuple[bool, str]:
        """(obligation met on every path into `key`, failure detail)."""
        if key in visited:
            return True, ""  # cycle: optimistic — entry edge re-checks
        visited.add(key)
        callers = program.union_callers(key)
        if not callers:
            func = program.functions[key]
            return (
                False,
                f"entry point {func.qualname} reaches it with no "
                "dominating enforcement check",
            )
        method = program.functions[key].name
        for caller_key in sorted(callers):
            caller = program.functions[caller_key]
            for call in caller.calls:
                if call.name.split(".")[-1] != method:
                    continue
                if _site_guarded(
                    call.dom_prims, call.dom_guards, call.dom_calls, enforcing_names
                ):
                    continue
                ok, detail = discharged(caller_key)
                if not ok:
                    return (
                        False,
                        f"via {caller.qualname} "
                        f"({caller_key[0]}:{call.line}): {detail}",
                    )
        return True, ""

    ok, detail = discharged(origin)
    if ok:
        return None
    origin_func = program.functions[origin]
    mod = program.modules[origin[0]]
    return Finding(
        path=mod.path,
        line=site.line,
        col=site.col,
        rule="SL010",
        message=(
            f"{site.packet} transmission `send(..., {site.expr})` in "
            f"{origin_func.qualname} is not dominated by an enforcement "
            f"check (BF lookup, signature verify, precheck, or "
            f"record_decision) on every path — {detail}"
        ),
    )
