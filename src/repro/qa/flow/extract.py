"""The per-module front-end: one file -> one :class:`ModuleSummary`.

This is the only module that touches source text or ASTs; everything
downstream (call graph, the three analyses) consumes plain summaries,
which is what makes them cacheable.  Per function the extractor
records:

- every call expression (dotted name as written),
- direct determinism-source uses — plain calls, ``clock = time.time``
  aliases, default-argument evaluations, and lambda bodies,
- packet transmission sites (``self.send(face, pkt, ...)``) with the
  packet's inferred kind (Data / Nack / Interest), and
- for each transmission site, each ordinary call site, and the
  function's exit: the *protectors* that dominate it on every CFG path
  — enforcement-primitive calls, protocol-state clearance guards, and
  plain callee names (resolved interprocedurally later).

Clearance guards are polarity-sensitive: only an
:class:`~repro.qa.flow.cfg.Assume`-True node whose condition (or a
top-level ``and`` conjunct of it) establishes ``<pkt>.nack is None`` /
``<pkt>.access_level is None`` (public content), or classifies the
packet via ``is_tag_response()`` / ``is_registration()``, counts.
Merely *mentioning* protocol state in some branch test must not
discharge an enforcement obligation — that is exactly the laundering
SL010 exists to catch.

Packet kinds come from a lightweight local type environment: parameter
annotations, ``Data(...)``/``Nack(...)``/``Interest(...)``
constructions, ``x.copy()`` chains, and (matching repo idiom) the
variable-name conventions ``data``/``nack``/``interest``.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.qa.flow.cfg import Assume, build_cfg, strict_dominators
from repro.qa.flow.model import (
    CallSite,
    ClassInfo,
    FieldDecl,
    FunctionInfo,
    ModuleSummary,
    PoolSubmit,
    SendSite,
    SourceUse,
)
from repro.qa.rules import (
    _WALL_CLOCK_CALLS,
    _WALL_CLOCK_FROM_TIME,
    package_relpath,
)

#: Determinism sources beyond the wall clock (dotted call names).
ENTROPY_CALLS = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: ``random.X`` module-level functions draw from the shared global RNG;
#: ``random.Random()`` with no arguments seeds from OS entropy.
RANDOM_MODULE = "random"
SECRETS_MODULE = "secrets"

#: Enforcement primitives: a dominating call to one of these names is
#: an access-control decision (SL008 separately polices that
#: ``record_decision`` kinds are DECISION_KINDS literals).
ENFORCEMENT_CALLS = {
    "bf_lookup",
    "bf_insert",
    "verify_tag_signature",
    "edge_precheck",
    "content_precheck",
    "paths_match",
    "record_decision",
    "_verify_client_signature",
}

#: Clearance guards: attributes whose ``is None`` comparison, when it
#: dominates with True polarity, licenses a transmission (NACK-free
#: packet, public content); calls that classify the packet kind.
GUARD_ATTRS = {"nack", "access_level"}
GUARD_CALLS = {"is_tag_response", "is_registration"}

#: Transmission calls: ``<recv>.send(face, packet, ...)``.
SEND_ATTRS = {"send"}

#: Process-pool fan-out methods whose first argument crosses the
#: pickling boundary (SL012).
POOL_METHODS = {
    "imap",
    "imap_unordered",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "apply_async",
    "submit",
}

_SUPPRESS_RE = re.compile(
    r"#\s*simflow:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?"
)

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _walk_pruned(root: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but does not descend into nested function
    definitions or lambdas (their bodies belong to *their* scans).  The
    pruned node itself is still yielded so callers can special-case it
    (lambda source scanning)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(node, _DEF_NODES + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _own_exprs(node: ast.AST) -> List[ast.AST]:
    """The expressions belonging to a CFG node *itself* — compound
    statements are lowered body-by-body, so scanning the whole subtree
    of a ``with``/``try`` head would double-count nested statements."""
    if isinstance(node, ast.Try):
        return []
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in node.items]
    if isinstance(node, _DEF_NODES + (ast.ClassDef,)):
        return []
    return [node]


def source_fingerprint(source: str) -> str:
    """BLAKE2 over the raw source — the cachedb key component."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def parse_suppressions(source: str) -> Dict[int, Tuple[str, ...]]:
    """Map line -> disabled simflow codes (``*`` = every rule)."""
    out: Dict[int, Tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = ("*",)
        else:
            out[lineno] = tuple(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return out


def module_dotted_name(path: str) -> str:
    """``src/repro/core/edge_router.py`` -> ``repro.core.edge_router``."""
    relpath = package_relpath(path)
    if "/" not in relpath:
        return ""  # bare filename: not importable as a repro module
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in stem.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts)


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _annotation_terminal(node: Optional[ast.AST]) -> str:
    """The terminal name of a plain/string annotation (``Data``)."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip()
    dotted = _dotted(node)
    if dotted:
        return dotted.split(".")[-1]
    return ""


class _ImportTable:
    """Local binding -> dotted target, from the module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def expand(self, dotted: str) -> str:
        """Rewrite a call name through the import table
        (``spec.make`` -> ``repro.exec.spec.make`` when imported)."""
        head, _, rest = dotted.partition(".")
        target = self.bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


class _FunctionExtractor:
    """Walks one function body and produces a :class:`FunctionInfo`."""

    def __init__(
        self,
        func: ast.AST,
        class_name: str,
        imports: _ImportTable,
        from_time_names: Set[str],
    ) -> None:
        self.func = func
        self.class_name = class_name
        self.imports = imports
        self.from_time_names = from_time_names
        self.types: Dict[str, str] = {}
        self.aliases: Dict[str, str] = {}  # local name -> source dotted

    # ------------------------------------------------------------------
    # Local type environment
    # ------------------------------------------------------------------
    _PACKET_TYPES = {"Data": "data", "Nack": "nack", "Interest": "interest"}
    _NAME_CONVENTIONS = {
        "data": "data",
        "out": "data",
        "nack": "nack",
        "interest": "interest",
        "forwarded": "interest",
    }

    def _collect_env(self) -> None:
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                terminal = _annotation_terminal(arg.annotation)
                if terminal in self._PACKET_TYPES:
                    self.types[arg.arg] = self._PACKET_TYPES[terminal]
        for node in _walk_pruned(self.func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = self._expr_packet_kind(node.value, allow_env=True)
            if kind != "unknown":
                self.types[target.id] = kind
                continue
            # Source aliasing: ``clock = time.time`` (no call).
            dotted = _dotted(node.value)
            if dotted and self._is_source_name(dotted):
                self.aliases[target.id] = self._normalize_source(dotted)

    def _expr_packet_kind(self, node: ast.AST, allow_env: bool = False) -> str:
        if isinstance(node, ast.Call):
            callee = _dotted(node.func)
            terminal = callee.split(".")[-1]
            if terminal in self._PACKET_TYPES:
                return self._PACKET_TYPES[terminal]
            if terminal == "copy":
                # ``out = data.copy()`` — the copy keeps the kind.
                receiver = callee.rsplit(".", 1)[0] if "." in callee else ""
                return self._name_kind(receiver) if receiver else "unknown"
            return "unknown"
        if isinstance(node, ast.IfExp):
            kinds = {
                self._expr_packet_kind(node.body, allow_env),
                self._expr_packet_kind(node.orelse, allow_env),
            }
            kinds.discard("unknown")
            return kinds.pop() if len(kinds) == 1 else "unknown"
        if isinstance(node, ast.Name) and allow_env:
            return self._name_kind(node.id)
        return "unknown"

    def _name_kind(self, name: str) -> str:
        if name in self.types:
            return self.types[name]
        return self._NAME_CONVENTIONS.get(name, "unknown")

    # ------------------------------------------------------------------
    # Determinism sources
    # ------------------------------------------------------------------
    def _is_source_name(self, dotted: str) -> bool:
        expanded = self.imports.expand(dotted)
        if dotted in _WALL_CLOCK_CALLS or expanded in _WALL_CLOCK_CALLS:
            return True
        if dotted in ENTROPY_CALLS or expanded in ENTROPY_CALLS:
            return True
        if dotted in self.from_time_names:
            return True
        for name in (dotted, expanded):
            head = name.split(".")[0]
            if head in (RANDOM_MODULE, SECRETS_MODULE) and "." in name:
                return True
        return False

    def _normalize_source(self, dotted: str) -> str:
        expanded = self.imports.expand(dotted)
        if dotted in self.from_time_names:
            return f"time.{dotted.split('.')[-1]}"
        return expanded if expanded != dotted else dotted

    # ------------------------------------------------------------------
    # Main walk
    # ------------------------------------------------------------------
    def extract(self) -> FunctionInfo:
        self._collect_env()
        cfg = build_cfg(self.func)
        site_doms, exit_dom = strict_dominators(cfg)

        calls: List[CallSite] = []
        sources: List[SourceUse] = []
        sends: List[SendSite] = []
        submits: List[PoolSubmit] = []
        globals_written: List[str] = []

        for nid in range(2, len(cfg.nodes)):
            stmt = cfg.nodes[nid]
            if stmt is None or isinstance(stmt, Assume):
                continue
            doms = self._classify_dominators(cfg, site_doms.get(nid, set()))
            self._scan_node(stmt, doms, calls, sources, sends, submits)
            if isinstance(stmt, ast.Global):
                globals_written.extend(stmt.names)

        self._scan_defaults(sources)
        exit_prims, exit_guards, exit_calls = self._classify_dominators(
            cfg, exit_dom
        )
        name = getattr(self.func, "name", "<lambda>")
        qualname = f"{self.class_name}.{name}" if self.class_name else name
        return FunctionInfo(
            qualname=qualname,
            name=name,
            line=getattr(self.func, "lineno", 1),
            class_name=self.class_name,
            calls=tuple(calls),
            sources=tuple(sources),
            send_sites=tuple(sends),
            exit_prims=exit_prims,
            exit_guards=exit_guards,
            exit_calls=exit_calls,
            global_writes=tuple(dict.fromkeys(globals_written)),
            pool_submits=tuple(submits),
        )

    def _scan_node(
        self,
        stmt: ast.AST,
        doms: Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]],
        calls: List[CallSite],
        sources: List[SourceUse],
        sends: List[SendSite],
        submits: List[PoolSubmit],
    ) -> None:
        dom_prims, dom_guards, dom_calls = doms
        for root in _own_exprs(stmt):
            for node in _walk_pruned(root):
                if isinstance(node, _DEF_NODES):
                    continue
                if isinstance(node, ast.Lambda):
                    self._scan_lambda(node, sources)
                    continue
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if not dotted:
                    continue
                terminal = dotted.split(".")[-1]
                calls.append(
                    CallSite(
                        name=dotted,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        dom_prims=dom_prims,
                        dom_guards=dom_guards,
                        dom_calls=dom_calls,
                    )
                )
                if self._is_source_name(dotted) or self._no_arg_entropy(
                    node, dotted
                ):
                    sources.append(
                        SourceUse(
                            source=self._normalize_source(dotted),
                            line=node.lineno,
                            col=node.col_offset + 1,
                            via="call",
                        )
                    )
                elif dotted in self.aliases:
                    sources.append(
                        SourceUse(
                            source=self.aliases[dotted],
                            line=node.lineno,
                            col=node.col_offset + 1,
                            via="alias",
                        )
                    )
                if terminal in SEND_ATTRS and len(node.args) >= 2:
                    packet_expr = node.args[1]
                    sends.append(
                        SendSite(
                            line=node.lineno,
                            col=node.col_offset + 1,
                            packet=self._expr_packet_kind(
                                packet_expr, allow_env=True
                            ),
                            expr=ast.unparse(packet_expr),
                            dom_prims=dom_prims,
                            dom_guards=dom_guards,
                            dom_calls=dom_calls,
                        )
                    )
                if terminal in POOL_METHODS and node.args:
                    submits.append(self._pool_submit(node, terminal))

    def _scan_lambda(self, node: ast.Lambda, sources: List[SourceUse]) -> None:
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted and self._is_source_name(dotted):
                    sources.append(
                        SourceUse(
                            source=self._normalize_source(dotted),
                            line=sub.lineno,
                            col=sub.col_offset + 1,
                            via="lambda",
                        )
                    )

    def _pool_submit(self, node: ast.Call, method: str) -> PoolSubmit:
        target = node.args[0]
        if isinstance(target, ast.Name):
            target_kind, target_name = "name", target.id
        elif isinstance(target, ast.Lambda):
            target_kind, target_name = "lambda", "<lambda>"
        elif isinstance(target, ast.Attribute):
            target_kind, target_name = "attr", _dotted(target)
        else:
            target_kind, target_name = "other", ast.unparse(target)
        return PoolSubmit(
            method=method,
            target_kind=target_kind,
            target=target_name,
            line=node.lineno,
            col=node.col_offset + 1,
        )

    def _scan_defaults(self, sources: List[SourceUse]) -> None:
        # Default arguments evaluate once, at definition time — a
        # source there is both a determinism leak and an aliasing bug.
        args = getattr(self.func, "args", None)
        if args is None:
            return
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            for node in ast.walk(default):
                if isinstance(node, ast.Call):
                    dotted = _dotted(node.func)
                    if dotted and self._is_source_name(dotted):
                        sources.append(
                            SourceUse(
                                source=self._normalize_source(dotted),
                                line=node.lineno,
                                col=node.col_offset + 1,
                                via="default-arg",
                            )
                        )

    def _no_arg_entropy(self, node: ast.Call, dotted: str) -> bool:
        """``random.Random()`` / ``Random()`` with no seed argument."""
        expanded = self.imports.expand(dotted)
        if expanded in ("random.Random", "random.SystemRandom") or dotted in (
            "random.Random",
            "random.SystemRandom",
        ):
            return not node.args and not node.keywords
        return False

    # ------------------------------------------------------------------
    # Dominator classification
    # ------------------------------------------------------------------
    def _classify_dominators(
        self, cfg, dom_ids: Set[int]
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
        prims: List[str] = []
        guards: List[str] = []
        callee_names: List[str] = []
        for dom_id in sorted(dom_ids):
            node = cfg.nodes[dom_id]
            if node is None:
                continue
            if isinstance(node, Assume):
                if node.value:
                    guard = self._guard_description(node.test)
                    if guard:
                        guards.append(guard)
                continue
            for root in _own_exprs(node):
                for sub in _walk_pruned(root):
                    if isinstance(sub, _DEF_NODES + (ast.Lambda,)):
                        continue
                    if not isinstance(sub, ast.Call):
                        continue
                    dotted = _dotted(sub.func)
                    if not dotted:
                        continue
                    terminal = dotted.split(".")[-1]
                    if terminal in ENFORCEMENT_CALLS:
                        if terminal == "record_decision" and not (
                            sub.args
                            and isinstance(sub.args[0], ast.Constant)
                            and isinstance(sub.args[0].value, str)
                        ):
                            continue
                        prims.append(terminal)
                    else:
                        callee_names.append(terminal)
        return (
            tuple(dict.fromkeys(prims)),
            tuple(dict.fromkeys(guards)),
            tuple(dict.fromkeys(callee_names)),
        )

    def _guard_description(self, test: ast.expr) -> str:
        """Non-empty when Assume-True of ``test`` licenses transmission."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            conjuncts = list(test.values)
        else:
            conjuncts = [test]
        for conj in conjuncts:
            if (
                isinstance(conj, ast.Compare)
                and len(conj.ops) == 1
                and isinstance(conj.ops[0], ast.Is)
                and isinstance(conj.comparators[0], ast.Constant)
                and conj.comparators[0].value is None
                and isinstance(conj.left, ast.Attribute)
                and conj.left.attr in GUARD_ATTRS
            ):
                return f"{_dotted(conj.left) or conj.left.attr} is None"
            if isinstance(conj, ast.Call):
                terminal = _dotted(conj.func).split(".")[-1]
                if terminal in GUARD_CALLS:
                    return f"{terminal}()"
        return ""


def extract_module(path: str, source: str) -> ModuleSummary:
    """Summarise one file (never raises on bad syntax)."""
    relpath = package_relpath(path)
    fingerprint = source_fingerprint(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ModuleSummary(
            path=path,
            relpath=relpath,
            module=module_dotted_name(path),
            fingerprint=fingerprint,
            syntax_error=f"line {exc.lineno}: {exc.msg}",
        )

    imports = _ImportTable(tree)
    from_time_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FROM_TIME:
                    from_time_names.add(alias.asname or alias.name)

    functions: List[FunctionInfo] = []
    classes: List[ClassInfo] = []

    def _extract_function(func: ast.AST, class_name: str) -> None:
        functions.append(
            _FunctionExtractor(
                func, class_name, imports, from_time_names
            ).extract()
        )

    for node in tree.body:
        if isinstance(node, _DEF_NODES):
            _extract_function(node, "")
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                filter(None, (_dotted(base).split(".")[-1] for base in node.bases))
            )
            methods: List[str] = []
            fields: List[FieldDecl] = []
            for member in node.body:
                if isinstance(member, _DEF_NODES):
                    methods.append(member.name)
                    _extract_function(member, node.name)
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    fields.append(
                        FieldDecl(
                            name=member.target.id,
                            annotation=ast.unparse(member.annotation),
                        )
                    )
            decorators = {
                _dotted(d.func if isinstance(d, ast.Call) else d).split(".")[-1]
                for d in node.decorator_list
            }
            classes.append(
                ClassInfo(
                    name=node.name,
                    line=node.lineno,
                    bases=bases,
                    methods=tuple(methods),
                    fields=tuple(fields),
                    is_dataclass="dataclass" in decorators,
                    is_enum=any("Enum" in base for base in bases),
                )
            )

    return ModuleSummary(
        path=path,
        relpath=relpath,
        module=module_dotted_name(path),
        fingerprint=fingerprint,
        imports=dict(imports.bindings),
        functions=tuple(functions),
        classes=tuple(classes),
        suppressions=parse_suppressions(source),
    )
