"""Text / JSON / SARIF reporters for a :class:`FlowReport`."""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.qa.findings import render_text, sort_findings
from repro.qa.flow.model import FLOW_RULES, FlowReport
from repro.qa.sarif import render_sarif


def report_text(report: FlowReport) -> str:
    lines = []
    shown = (
        report.new_findings
        if report.new_findings is not None
        else report.findings
    )
    body = render_text(shown)
    if body:
        lines.append(body)
    lines.append(
        "simflow: {findings} finding(s){new} | {parsed} parsed, "
        "{cached} cached of {total} modules | {wall:.2f}s".format(
            findings=len(report.findings),
            new=(
                f", {len(report.new_findings)} new vs baseline"
                if report.new_findings is not None
                else ""
            ),
            parsed=report.modules_parsed,
            cached=report.modules_cached,
            total=report.modules_total,
            wall=report.wall_seconds,
        )
    )
    return "\n".join(lines)


def report_json(report: FlowReport) -> str:
    payload = {
        "findings": [asdict(f) for f in sort_findings(report.findings)],
        "new_findings": (
            [asdict(f) for f in sort_findings(report.new_findings)]
            if report.new_findings is not None
            else None
        ),
        "stats": report.stats(),
    }
    return json.dumps(payload, indent=2)


def report_sarif(report: FlowReport) -> str:
    shown = (
        report.new_findings
        if report.new_findings is not None
        else report.findings
    )
    return render_sarif(shown, tool_name="simflow", rules=FLOW_RULES)
