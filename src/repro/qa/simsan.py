""""SimSan": the opt-in runtime sanitizer.

Installs invariant hooks into a :class:`~repro.sim.engine.Simulator`
and the nodes/tables attached to it.  When *not* installed the
substrate pays nothing: the engine selects a sanitized run loop only
when ``sim.sanitizer`` is set (same pattern as the profiler), and the
table hook attributes (``pit.san`` / ``cs.san`` / ``bloom.san``)
default to ``None`` behind single attribute checks on cold-ish paths.

Enable per-process with ``REPRO_SIMSAN=1`` (the experiment runner
calls :func:`maybe_install` on every run) or install explicitly.

Checked invariants
------------------
- **Event-clock monotonicity** — every executed event carries a
  timestamp >= the current virtual clock; the event stream is also
  folded into a running BLAKE2 hash for double-run determinism checks
  (:mod:`repro.qa.determinism`).
- **PIT record conservation** — records inserted = records consumed +
  expired + dropped + still pending; a router that loses forwarding
  state without accounting for it (the stateless-forwarding-attack
  failure mode) trips this at :meth:`SimSan.finish`.
- **PIT/CS occupancy bounds** — capacity-limited tables never exceed
  their capacity; a capacity-0 content store stays empty.
- **Bloom-filter fill monotonicity** — the insert counter rises by
  exactly one per insert and the bit-fill ratio never decreases
  between resets (sampled every ``bloom_check_interval`` inserts; the
  popcount is O(m/8)).
- **Interest disposition** — every Interest a node receives must be
  *dispositioned* within its handler: forwarded or answered (a send),
  parked (PIT insert/aggregate), shed (rejection, unroutable or
  protocol drop counters), served from cache, or explicitly deferred
  (a scheduled continuation).  A handler that silently swallows an
  Interest — a black-hole — trips this immediately.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SanitizerError",
    "SimSan",
    "Violation",
    "enabled",
    "maybe_install",
]

#: Events hashed per block; block digests let a determinism mismatch be
#: localised without storing the full stream.
HASH_BLOCK_EVENTS = 256


class SanitizerError(AssertionError):
    """An invariant the simulation substrate must uphold was violated."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    kind: str
    message: str
    time: float


@dataclass
class _PitTally:
    inserted: int = 0
    consumed: int = 0
    expired: int = 0
    dropped: int = 0
    rejected: int = 0


@dataclass
class _BloomState:
    count: int = 0
    fill: float = 0.0
    inserts_since_check: int = 0


def enabled() -> bool:
    """True when the ``REPRO_SIMSAN`` environment opt-in is set."""
    return os.environ.get("REPRO_SIMSAN", "").strip().lower() in (
        "1", "true", "on", "yes",
    )


def maybe_install(sim: Any, network: Any = None) -> Optional["SimSan"]:
    """Install a sanitizer iff ``REPRO_SIMSAN`` is on (runner hook)."""
    if not enabled():
        return None
    return SimSan().install(sim, network)


class SimSan:
    """Invariant hooks over one simulator and its attached components.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`SanitizerError` at the
        first violation; ``"collect"`` records violations in
        :attr:`violations` and keeps running (used by tests and by the
        reporting CLI).
    bloom_check_interval:
        Inserts between bit-fill popcounts (1 = check every insert).
    hash_events:
        Fold every executed event into the determinism hash.
    """

    def __init__(
        self,
        mode: str = "raise",
        bloom_check_interval: int = 64,
        hash_events: bool = True,
    ) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.bloom_check_interval = bloom_check_interval
        self.hash_events = hash_events
        self.violations: List[Violation] = []
        self.events_seen = 0
        self._sim: Any = None
        self._pits: Dict[Any, _PitTally] = {}
        self._blooms: Dict[Any, _BloomState] = {}
        self._nodes: List[Any] = []
        self._node_sends: Dict[str, int] = {}
        self._node_drops: Dict[str, Callable[[], int]] = {}
        self._schedules = 0
        self._hasher = hashlib.blake2b(digest_size=16)
        self._block_hasher = hashlib.blake2b(digest_size=8)
        self._block_digests: List[str] = []
        self._finished = False
        #: Optional :class:`repro.obs.flightrec.FlightRecorder`; when
        #: set, the first violation dumps a post-mortem bundle before
        #: any raise, so the ring survives the abort.
        self.flightrec: Any = None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, sim: Any, network: Any = None) -> "SimSan":
        """Attach to the engine and (optionally) every network node."""
        self.attach_engine(sim)
        if network is not None:
            for node in network.nodes.values():
                self.attach_node(node)
        return self

    def attach_engine(self, sim: Any) -> None:
        self._sim = sim
        sim.sanitizer = self
        for name in ("schedule", "schedule_at"):
            original = getattr(sim, name)

            def wrapper(*args: Any, _orig: Any = original, **kwargs: Any) -> Any:
                self._schedules += 1
                return _orig(*args, **kwargs)

            setattr(sim, name, wrapper)

    def attach_node(self, node: Any) -> None:
        """Hook a node's tables and wrap its Interest handler."""
        self._nodes.append(node)
        pit = getattr(node, "pit", None)
        if pit is not None:
            pit.san = self
            self._pits.setdefault(pit, _PitTally())
        cs = getattr(node, "cs", None)
        if cs is not None:
            cs.san = self
        bloom = getattr(node, "bloom", None)
        if bloom is not None:
            self.attach_bloom(bloom)

        node_id = getattr(node, "node_id", repr(node))
        self._node_sends.setdefault(node_id, 0)
        self._node_drops[node_id] = self._drop_counter_reader(node)

        original_send = node.send

        def send_wrapper(
            face: Any, packet: Any, delay: float = 0.0,
            _orig: Any = original_send, _id: str = node_id,
        ) -> Any:
            self._node_sends[_id] += 1
            return _orig(face, packet, delay)

        node.send = send_wrapper

        original_on_interest = node.on_interest

        def on_interest_wrapper(
            interest: Any, in_face: Any,
            _orig: Any = original_on_interest, _node: Any = node,
            _id: str = node_id,
        ) -> Any:
            before = self._disposition_count(_node, _id)
            result = _orig(interest, in_face)
            if self._disposition_count(_node, _id) <= before:
                self._violation(
                    "interest-black-hole",
                    f"node {_id} received Interest {interest.name} and "
                    f"dispositioned nothing: not forwarded, answered, "
                    f"parked in the PIT, shed, or deferred",
                )
            return result

        node.on_interest = on_interest_wrapper

    def attach_bloom(self, bloom: Any) -> None:
        bloom.san = self
        self._blooms.setdefault(
            bloom, _BloomState(count=bloom.count, fill=bloom.fill_ratio())
        )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def before_event(self, event: Any, now: float) -> None:
        """Called by the sanitized run loop before each execution."""
        self.events_seen += 1
        if event.time < now:
            self._violation(
                "clock-regression",
                f"event {event!r} fires at {event.time!r} but the clock "
                f"is already at {now!r}",
            )
        if self.hash_events:
            descriptor = (
                f"{event.time!r}|{event.priority}|"
                f"{getattr(event.callback, '__qualname__', '?')}|"
                f"{len(event.args)}"
            ).encode()
            self._hasher.update(descriptor)
            self._block_hasher.update(descriptor)
            if self.events_seen % HASH_BLOCK_EVENTS == 0:
                self._block_digests.append(self._block_hasher.hexdigest())
                self._block_hasher = hashlib.blake2b(digest_size=8)

    def stream_digest(self) -> str:
        """Hash of every executed event's (time, priority, callback)."""
        return self._hasher.hexdigest()

    def block_digests(self) -> List[str]:
        """Per-block digests (one per :data:`HASH_BLOCK_EVENTS` events)."""
        out = list(self._block_digests)
        if self.events_seen % HASH_BLOCK_EVENTS:
            out.append(self._block_hasher.hexdigest())
        return out

    # ------------------------------------------------------------------
    # PIT hooks
    # ------------------------------------------------------------------
    def pit_insert(self, pit: Any, aggregated: bool) -> None:
        tally = self._pits.setdefault(pit, _PitTally())
        tally.inserted += 1
        if pit.capacity and len(pit) > pit.capacity:
            self._violation(
                "pit-occupancy",
                f"PIT holds {len(pit)} entries, capacity {pit.capacity}",
            )

    def pit_reject(self, pit: Any) -> None:
        self._pits.setdefault(pit, _PitTally()).rejected += 1

    def pit_consume(self, pit: Any, entry: Any) -> None:
        self._pits.setdefault(pit, _PitTally()).consumed += len(entry.records)

    def pit_expire(self, pit: Any, records: int) -> None:
        self._pits.setdefault(pit, _PitTally()).expired += records

    def pit_drop(self, pit: Any, records: int) -> None:
        self._pits.setdefault(pit, _PitTally()).dropped += records

    # ------------------------------------------------------------------
    # CS / Bloom hooks
    # ------------------------------------------------------------------
    def cs_insert(self, cs: Any) -> None:
        if cs.capacity <= 0:
            if len(cs) > 0:
                self._violation(
                    "cs-occupancy",
                    "capacity-0 content store is holding packets",
                )
            return
        if len(cs) > cs.capacity:
            self._violation(
                "cs-occupancy",
                f"content store holds {len(cs)} packets, capacity "
                f"{cs.capacity}",
            )

    def bf_insert(self, bloom: Any) -> None:
        state = self._blooms.setdefault(bloom, _BloomState())
        if bloom.count != state.count + 1:
            self._violation(
                "bf-monotonicity",
                f"Bloom insert moved count {state.count} -> {bloom.count} "
                f"(expected {state.count + 1}); counter tampered between "
                f"inserts",
            )
        state.count = bloom.count
        state.inserts_since_check += 1
        if state.inserts_since_check >= self.bloom_check_interval:
            state.inserts_since_check = 0
            fill = bloom.fill_ratio()
            if fill < state.fill:
                self._violation(
                    "bf-monotonicity",
                    f"Bloom bit-fill fell {state.fill:.6f} -> {fill:.6f} "
                    f"without a reset; bits were cleared out-of-band",
                )
            state.fill = fill

    def bf_reset(self, bloom: Any) -> None:
        state = self._blooms.setdefault(bloom, _BloomState())
        state.count = 0
        state.fill = 0.0
        state.inserts_since_check = 0

    def check_bloom(self, bloom: Any) -> None:
        """Force an immediate fill check (tests; bypasses sampling)."""
        state = self._blooms.setdefault(bloom, _BloomState())
        fill = bloom.fill_ratio()
        if fill < state.fill:
            self._violation(
                "bf-monotonicity",
                f"Bloom bit-fill fell {state.fill:.6f} -> {fill:.6f} "
                f"without a reset; bits were cleared out-of-band",
            )
        state.fill = fill

    # ------------------------------------------------------------------
    # Disposition accounting
    # ------------------------------------------------------------------
    def _drop_counter_reader(self, node: Any) -> Callable[[], int]:
        """Protocol drop counters, when the node exposes OpCounters."""
        counters = getattr(node, "counters", None)
        if counters is None:
            return lambda: 0

        def read() -> int:
            return (
                getattr(counters, "precheck_drops", 0)
                + getattr(counters, "access_path_drops", 0)
                + getattr(counters, "nacks_issued", 0)
            )

        return read

    def _disposition_count(self, node: Any, node_id: str) -> int:
        total = self._node_sends[node_id] + self._schedules
        total += getattr(node, "unroutable_drops", 0)
        cs = getattr(node, "cs", None)
        if cs is not None:
            total += cs.hits
        pit = getattr(node, "pit", None)
        if pit is not None:
            tally = self._pits.setdefault(pit, _PitTally())
            total += tally.inserted + tally.rejected
        total += self._node_drops[node_id]()
        return total

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check_tables(self) -> None:
        """Sweep every attached table's occupancy bound now."""
        for pit in self._pits:
            if pit.capacity and len(pit) > pit.capacity:
                self._violation(
                    "pit-occupancy",
                    f"PIT holds {len(pit)} entries, capacity {pit.capacity}",
                )

    def finish(self) -> List[Violation]:
        """End-of-run conservation checks; returns all violations.

        In ``raise`` mode the first end-of-run violation raises, like
        every other check.  Idempotent: callable once per run.
        """
        if self._finished:
            return list(self.violations)
        self._finished = True
        for pit, tally in self._pits.items():
            live = sum(len(e.records) for e in pit._entries.values())
            accounted = tally.consumed + tally.expired + tally.dropped + live
            if tally.inserted != accounted:
                self._violation(
                    "pit-conservation",
                    f"PIT records leaked: {tally.inserted} inserted but "
                    f"{tally.consumed} consumed + {tally.expired} expired "
                    f"+ {tally.dropped} dropped + {live} pending = "
                    f"{accounted}",
                )
        return list(self.violations)

    # ------------------------------------------------------------------
    # Violation sink
    # ------------------------------------------------------------------
    def _violation(self, kind: str, message: str) -> None:
        now = self._sim.now if self._sim is not None else 0.0
        violation = Violation(kind=kind, message=message, time=now)
        self.violations.append(violation)
        if self.flightrec is not None and len(self.violations) == 1:
            self.flightrec.dump(f"simsan-{kind}")
        if self.mode == "raise":
            raise SanitizerError(f"[{kind}] t={now:.6f}: {message}")
