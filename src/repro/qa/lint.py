"""simlint: the scanner, suppression handling, and CLI.

Usage::

    python -m repro.qa.lint src/repro              # text report, exit 1 on findings
    python -m repro.qa.lint src/repro --format json
    python -m repro.qa.lint --list-rules
    python -m repro.qa.lint src/repro --select SL002,SL004

Suppression: append ``# simlint: disable=SL001`` (comma-separate for
several codes, omit ``=...`` to disable every rule) to the flagged
line.  Suppressions are expected to carry a justifying comment — the
reviewer's contract, not the tool's.

The scan runs two passes: the first parses every file and collects the
declared event/metric registries (for SL003), the second runs every
rule over every module.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.findings import Finding, render_json, render_text, sort_findings
from repro.qa.rules import ALL_RULES, LintContext, Module, Rule, RULES_BY_CODE

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel for "every rule disabled on this line".
_ALL_CODES = frozenset({"*"})


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


def parse_suppressions(source: str) -> Dict[int, frozenset]:
    """Map line number -> set of disabled rule codes ('*' = all)."""
    out: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = _ALL_CODES
        else:
            out[lineno] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return out


def load_module(path: Path) -> Tuple[Optional[Module], Optional[Finding]]:
    """Parse one file; a syntax error becomes a synthetic finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule="SL000",
            message=f"syntax error: {exc.msg}",
        )
    return Module(path=str(path), source=source, tree=tree), None


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Finding]:
    """Run the rule set over ``paths`` and return surviving findings."""
    active = [r for r in rules if select is None or r.code in select]
    modules: List[Module] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        module, error = load_module(path)
        if error is not None:
            findings.append(error)
        if module is not None:
            modules.append(module)

    ctx = LintContext()
    for module in modules:
        ctx.merge_registries(module)

    suppressions: Dict[str, Dict[int, frozenset]] = {}
    for module in modules:
        suppressions[module.path] = parse_suppressions(module.source)
        for rule in active:
            if not rule.applies_to(module):
                continue
            findings.extend(rule.check(module, ctx))

    return sort_findings(
        f for f in findings
        if not _suppressed(f, suppressions.get(f.path, {}))
    )


def _suppressed(finding: Finding, by_line: Dict[int, frozenset]) -> bool:
    codes = by_line.get(finding.line)
    if codes is None:
        return False
    return codes is _ALL_CODES or "*" in codes or finding.rule in codes


def list_rules() -> str:
    lines = ["simlint rules:"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.code}  {rule.title}")
        doc = (rule.__doc__ or "").strip().splitlines()[0]
        lines.append(f"         {doc}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.qa.lint",
        description="Simulator-specific static analysis (simlint).",
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if not args.paths:
        print("usage: python -m repro.qa.lint <paths> (or --list-rules)",
              file=sys.stderr)
        return 2
    select: Optional[Set[str]] = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        unknown = select - set(RULES_BY_CODE)
        if unknown:
            print(f"unknown rule codes: {sorted(unknown)}", file=sys.stderr)
            return 2
    findings = lint_paths(args.paths, select=select)
    if findings:
        render = render_json if args.format == "json" else render_text
        print(render(findings))
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "json":
        print("[]")
    else:
        print("simlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
