"""simlint: the scanner, suppression handling, and CLI.

Usage::

    python -m repro.qa.lint src/repro              # text report, exit 1 on findings
    python -m repro.qa.lint src/repro --format json
    python -m repro.qa.lint src/repro --format sarif > simlint.sarif
    python -m repro.qa.lint src/repro --jobs 4
    python -m repro.qa.lint --list-rules
    python -m repro.qa.lint src/repro --select SL002,SL004

Suppression: append ``# simlint: disable=SL001`` (comma-separate for
several codes, omit ``=...`` to disable every rule) to the flagged
line.  Suppressions are expected to carry a justifying comment — the
reviewer's contract, not the tool's.

Each file is parsed exactly once; rules iterate a shared
:class:`~repro.qa.rules.NodeIndex` built in one walk of that tree.
Registry-dependent rules (:class:`~repro.qa.rules.ContextRule`) split
into a per-file *collect* phase and a cross-file *judge* phase, so
``--jobs N`` can fan the per-file work out to worker processes and
judge the returned candidates against the merged registries in the
parent — serial and parallel runs share one implementation of every
rule.
"""

from __future__ import annotations

import argparse
import ast
import json
import multiprocessing
import os
import re
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.findings import Finding, render_text, sort_findings
from repro.qa.rules import (
    ALL_RULES,
    Candidate,
    ContextRule,
    LintContext,
    Module,
    Rule,
    RULES_BY_CODE,
)
from repro.qa.sarif import render_sarif

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel for "every rule disabled on this line".
_ALL_CODES = frozenset({"*"})


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


def parse_suppressions(source: str) -> Dict[int, frozenset]:
    """Map line number -> set of disabled rule codes ('*' = all)."""
    out: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = _ALL_CODES
        else:
            out[lineno] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return out


def load_module(path: Path) -> Tuple[Optional[Module], Optional[Finding]]:
    """Parse one file; a syntax error becomes a synthetic finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule="SL000",
            message=f"syntax error: {exc.msg}",
        )
    return Module(path=str(path), source=source, tree=tree), None


@dataclass
class FileScan:
    """Everything one worker learns about one file.

    Context-free findings are final; candidates await judgement against
    the merged registries.  The payload is picklable, so the same shape
    crosses the ``--jobs`` process boundary and feeds the serial path.
    """

    path: str
    findings: List[Finding] = field(default_factory=list)
    candidates: List[Candidate] = field(default_factory=list)
    suppressions: Dict[int, frozenset] = field(default_factory=dict)
    events: Set[str] = field(default_factory=set)
    metrics: Set[str] = field(default_factory=set)
    decisions: Set[str] = field(default_factory=set)
    phases: Set[str] = field(default_factory=set)
    fleet_phases: Set[str] = field(default_factory=set)
    statescope: Set[str] = field(default_factory=set)


def scan_file(
    path: Path,
    select: Optional[FrozenSet[str]],
    rules: Sequence[Rule] = ALL_RULES,
) -> FileScan:
    """Parse + index one file; run context-free rules, collect the rest."""
    scan = FileScan(path=str(path))
    module, error = load_module(path)
    if error is not None:
        scan.findings.append(error)
    if module is None:
        return scan
    scan.suppressions = parse_suppressions(module.source)
    registries = LintContext()
    registries.merge_registries(module)
    scan.events = registries.declared_events
    scan.metrics = registries.declared_metrics
    scan.decisions = registries.declared_decisions
    scan.phases = registries.declared_phases
    scan.fleet_phases = registries.declared_fleet_phases
    scan.statescope = registries.declared_statescope
    empty_ctx = LintContext()
    for rule in rules:
        if select is not None and rule.code not in select:
            continue
        if not rule.applies_to(module):
            continue
        if isinstance(rule, ContextRule):
            scan.candidates.extend(rule.collect(module))
        else:
            scan.findings.extend(rule.check(module, empty_ctx))
    return scan


def _scan_worker(item: Tuple[str, Optional[FrozenSet[str]]]) -> FileScan:
    path_str, select = item
    return scan_file(Path(path_str), select)


def _judge_and_filter(
    scans: Sequence[FileScan], select: Optional[FrozenSet[str]]
) -> List[Finding]:
    """Merge registries, judge candidates, apply suppressions, sort."""
    ctx = LintContext()
    for scan in scans:
        ctx.declared_events |= scan.events
        ctx.declared_metrics |= scan.metrics
        ctx.declared_decisions |= scan.decisions
        ctx.declared_phases |= scan.phases
        ctx.declared_fleet_phases |= scan.fleet_phases
        ctx.declared_statescope |= scan.statescope

    findings: List[Finding] = []
    for scan in scans:
        findings.extend(scan.findings)
        for cand in scan.candidates:
            rule = RULES_BY_CODE.get(cand.rule)
            if rule is None or not isinstance(rule, ContextRule):
                continue
            if select is not None and rule.code not in select:
                continue
            finding = rule.judge(cand, ctx)
            if finding is not None:
                findings.append(finding)

    by_path = {scan.path: scan.suppressions for scan in scans}
    return sort_findings(
        f for f in findings if not _suppressed(f, by_path.get(f.path, {}))
    )


def lint_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    rules: Sequence[Rule] = ALL_RULES,
    jobs: int = 1,
) -> List[Finding]:
    """Run the rule set over ``paths`` and return surviving findings.

    ``jobs > 1`` fans per-file scans out to worker processes; custom
    ``rules`` sequences force a serial run (workers only know the
    registered rule set).
    """
    selected = frozenset(select) if select is not None else None
    files = iter_python_files(paths)
    if jobs > 1 and rules is ALL_RULES and len(files) > 1:
        items = [(str(path), selected) for path in files]
        with multiprocessing.Pool(processes=jobs) as pool:
            scans = pool.map(_scan_worker, items)
    else:
        scans = [scan_file(path, selected, rules) for path in files]
    return _judge_and_filter(scans, selected)


def _suppressed(finding: Finding, by_line: Dict[int, frozenset]) -> bool:
    codes = by_line.get(finding.line)
    if codes is None:
        return False
    return codes is _ALL_CODES or "*" in codes or finding.rule in codes


def rule_catalogue() -> Dict[str, Tuple[str, str]]:
    """Rule code -> (title, first doc line), for the SARIF driver."""
    catalogue: Dict[str, Tuple[str, str]] = {
        "SL000": ("syntax error", "the file failed to parse")
    }
    for rule in ALL_RULES:
        doc = (rule.__doc__ or rule.title).strip().splitlines()[0]
        catalogue[rule.code] = (rule.title, doc)
    return catalogue


def list_rules() -> str:
    lines = ["simlint rules:"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.code}  {rule.title}")
        doc = (rule.__doc__ or "").strip().splitlines()[0]
        lines.append(f"         {doc}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.qa.lint",
        description="Simulator-specific static analysis (simlint).",
    )
    parser.add_argument(
        "paths", nargs="*", default=[], help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-file scan (0 = cpu count)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if not args.paths:
        print("usage: python -m repro.qa.lint <paths> (or --list-rules)",
              file=sys.stderr)
        return 2
    select: Optional[Set[str]] = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        unknown = select - set(RULES_BY_CODE)
        if unknown:
            print(f"unknown rule codes: {sorted(unknown)}", file=sys.stderr)
            return 2
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    started = time.perf_counter()
    findings = lint_paths(args.paths, select=select, jobs=jobs)
    wall = time.perf_counter() - started
    if args.format == "sarif":
        print(render_sarif(findings, tool_name="simlint", rules=rule_catalogue()))
    elif args.format == "json":
        payload = {
            "findings": [asdict(f) for f in findings],
            "stats": {
                "findings": len(findings),
                "files": len(iter_python_files(args.paths)),
                "jobs": jobs,
                "wall_seconds": round(wall, 4),
            },
        }
        print(json.dumps(payload, indent=2))
    elif findings:
        print(render_text(findings))
    else:
        print("simlint: clean")
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
