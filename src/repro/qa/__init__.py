"""Correctness tooling: the ``simlint`` static analyzer and the
"SimSan" runtime sanitizer.

TACTIC's published figures depend on bit-for-bit reproducible runs:
the event schedule must be a pure function of the master seed, and the
forwarding-state invariants routers rely on (PIT record conservation,
bounded occupancy, Bloom-filter fill monotonicity) must hold on every
path.  This package makes both machine-checked:

- :mod:`repro.qa.lint` — an AST-based linter with simulator-specific
  rules (``python -m repro.qa.lint src/repro``),
- :mod:`repro.qa.simsan` — an opt-in runtime sanitizer
  (``REPRO_SIMSAN=1``) that installs invariant hooks into the
  simulator, nodes, and tables,
- :mod:`repro.qa.determinism` — a double-run event-stream hash check,
- ``python -m repro.qa`` — the one-shot gate running all of the above.

See docs/STATIC_ANALYSIS.md for the rule catalogue and invariants.
"""

from repro.qa.findings import Finding, render_json, render_text
from repro.qa.simsan import SanitizerError, SimSan

__all__ = [
    "Finding",
    "render_json",
    "render_text",
    "SanitizerError",
    "SimSan",
]
