"""Shared SARIF 2.1.0 rendering for simlint and simflow findings.

One run object per invocation; rule metadata comes from the caller so
each analyzer publishes its own catalogue.  The output targets GitHub
code scanning's SARIF ingestion: `uri` is the repo-relative path and
every result carries the rule id, message, and a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping, Tuple

from repro.qa.findings import Finding, sort_findings

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    findings: Iterable[Finding],
    tool_name: str,
    rules: Mapping[str, Tuple[str, str]],
    tool_version: str = "1.0.0",
) -> str:
    """SARIF 2.1.0 log (as a string) for one analyzer run.

    ``rules`` maps rule code -> (short name, full description).
    """
    ordered = sort_findings(findings)
    used_codes = sorted({f.rule for f in ordered} | set(rules))
    rule_objects = []
    rule_index: Dict[str, int] = {}
    for idx, code in enumerate(used_codes):
        name, description = rules.get(code, (code, code))
        rule_index[code] = idx
        rule_objects.append(
            {
                "id": code,
                "name": name.replace(" ", "-"),
                "shortDescription": {"text": name},
                "fullDescription": {"text": description},
                "defaultConfiguration": {"level": "error"},
            }
        )

    results = []
    for finding in ordered:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index.get(finding.rule, -1),
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": max(finding.col, 1),
                            },
                        }
                    }
                ],
            }
        )

    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "rules": rule_objects,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2)
