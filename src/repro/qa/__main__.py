"""The one-shot QA gate: ``python -m repro.qa [paths]``.

Runs, in order:

1. **simlint** over the source tree (always),
2. **simflow** — the whole-program analyzer, gated on the checked-in
   baseline (always),
3. a **SimSan smoke run** — one small scenario with every runtime
   invariant armed (always),
4. the **double-run determinism check** (always),
5. **mypy** and **ruff** per the pyproject config — *only when the
   tools are importable*; environments without them (the pinned repro
   container installs nothing) report SKIPPED rather than failing.

Exit status is non-zero iff any executed step fails; skipped steps
never fail the gate.  ``make qa`` and the CI ``lint`` job both land
here.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Callable, List, Optional, Tuple


def _step_lint(paths: List[str]) -> Tuple[bool, str]:
    from repro.qa.lint import lint_paths
    from repro.qa.findings import render_text

    findings = lint_paths(paths)
    if findings:
        return False, render_text(findings)
    return True, "clean"


def _step_flow(paths: List[str]) -> Tuple[bool, str]:
    from repro.qa.findings import render_text
    from repro.qa.flow.baseline import (
        DEFAULT_BASELINE,
        load_baseline,
        new_findings,
    )
    from repro.qa.flow.cachedb import SummaryCache, resolve_cache_dir
    from repro.qa.flow.cli import analyze_paths

    report = analyze_paths(paths, cache=SummaryCache(resolve_cache_dir(None)))
    baseline_path = Path(DEFAULT_BASELINE)
    if not baseline_path.exists():
        # Fall back to the repo checkout's baseline when run from
        # another working directory.
        candidate = Path(__file__).resolve().parents[3] / DEFAULT_BASELINE
        if candidate.exists():
            baseline_path = candidate
    fresh = new_findings(report.findings, load_baseline(str(baseline_path)))
    if fresh:
        return False, render_text(fresh)
    return True, (
        f"clean ({report.modules_parsed} parsed, "
        f"{report.modules_cached} cached of {report.modules_total} "
        f"modules, {report.wall_seconds:.2f}s)"
    )


def _step_simsan_smoke(paths: List[str]) -> Tuple[bool, str]:
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario
    from repro.qa.simsan import SimSan

    san = SimSan(mode="collect")
    run_scenario(
        Scenario.paper_topology(1, duration=1.0, seed=3, scale=0.05),
        sanitizer=san,
    )
    san.finish()
    if san.violations:
        detail = "\n".join(f"[{v.kind}] t={v.time:.6f}: {v.message}" for v in san.violations)
        return False, detail
    return True, f"{san.events_seen} events, all invariants held"


def _step_determinism(paths: List[str]) -> Tuple[bool, str]:
    from repro.experiments.scenario import Scenario
    from repro.qa.determinism import check_scenario

    report = check_scenario(
        Scenario.paper_topology(1, duration=1.0, seed=3, scale=0.05),
        label="smoke",
    )
    return report.ok, report.describe()


def _tool_available(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run_tool(argv: List[str]) -> Tuple[bool, str]:
    proc = subprocess.run(argv, capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    return proc.returncode == 0, output or f"exit {proc.returncode}"


def _step_mypy(paths: List[str]) -> Optional[Tuple[bool, str]]:
    if not _tool_available("mypy"):
        return None
    return _run_tool([sys.executable, "-m", "mypy"])


def _step_ruff(paths: List[str]) -> Optional[Tuple[bool, str]]:
    if not _tool_available("ruff"):
        return None
    return _run_tool([sys.executable, "-m", "ruff", "check"] + paths)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    default_root = Path(__file__).resolve().parents[1]  # src/repro
    paths = args or [str(default_root)]

    steps: List[Tuple[str, Callable]] = [
        ("simlint", _step_lint),
        ("simflow", _step_flow),
        ("simsan-smoke", _step_simsan_smoke),
        ("determinism", _step_determinism),
        ("mypy", _step_mypy),
        ("ruff", _step_ruff),
    ]
    failed = False
    for name, step in steps:
        result = step(paths)
        if result is None:
            print(f"[SKIP] {name}: tool not installed")
            continue
        ok, detail = result
        status = "ok" if ok else "FAIL"
        head, *rest = (detail.splitlines() or [""])
        print(f"[{status:>4}] {name}: {head}")
        for line in rest:
            print(f"       {line}")
        failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
