"""Double-run determinism check.

A run is *deterministic* when its entire event schedule is a pure
function of the master seed.  This module executes a scenario twice in
one process with a SimSan attached, hashes each run's event stream
(``(time, priority, callback, arity)`` per event — deliberately
excluding the global event sequence counter and argument reprs, both
of which legitimately differ between same-process runs), and compares
the digests.  On mismatch, the per-block digests localise the first
divergent window of :data:`~repro.qa.simsan.HASH_BLOCK_EVENTS` events.

Usage::

    python -m repro.qa.determinism                 # fig 5/6-style scenarios
    python -m repro.qa.determinism --topology 2 --duration 4 --seed 3
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.qa.simsan import HASH_BLOCK_EVENTS, SimSan

__all__ = ["RunDigest", "DeterminismReport", "scenario_digest", "check_scenario"]


@dataclass(frozen=True)
class RunDigest:
    """The event-stream fingerprint of one completed run."""

    stream: str
    blocks: List[str]
    events: int


@dataclass(frozen=True)
class DeterminismReport:
    """The verdict from comparing two runs of one scenario."""

    label: str
    first: RunDigest
    second: RunDigest

    @property
    def ok(self) -> bool:
        return self.first.stream == self.second.stream

    def first_divergent_block(self) -> Optional[int]:
        """Index of the first differing block digest (None when ok)."""
        if self.ok:
            return None
        for i, (a, b) in enumerate(zip(self.first.blocks, self.second.blocks)):
            if a != b:
                return i
        return min(len(self.first.blocks), len(self.second.blocks))

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.label}: deterministic "
                f"({self.first.events} events, digest {self.first.stream})"
            )
        block = self.first_divergent_block()
        low = (block or 0) * HASH_BLOCK_EVENTS
        return (
            f"{self.label}: NON-DETERMINISTIC — digests "
            f"{self.first.stream} != {self.second.stream}; first divergence "
            f"in events [{low}, {low + HASH_BLOCK_EVENTS}) "
            f"(event counts {self.first.events} vs {self.second.events})"
        )


def scenario_digest(scenario: Any) -> RunDigest:
    """Run ``scenario`` once under SimSan and fingerprint its events.

    ``collect`` mode: a determinism check should report divergence, not
    abort mid-run on an unrelated invariant.
    """
    from repro.experiments.runner import run_scenario

    san = SimSan(mode="collect", hash_events=True)
    run_scenario(scenario, sanitizer=san)
    return RunDigest(
        stream=san.stream_digest(),
        blocks=san.block_digests(),
        events=san.events_seen,
    )


def check_scenario(scenario: Any, label: str = "") -> DeterminismReport:
    """Run ``scenario`` twice and compare event-stream digests."""
    label = label or getattr(scenario, "label", "") or "scenario"
    return DeterminismReport(
        label=label,
        first=scenario_digest(scenario),
        second=scenario_digest(scenario),
    )


def _default_scenarios(args: argparse.Namespace) -> List[Tuple[str, Any]]:
    """The Fig. 5 (latency) and Fig. 6 (tag-rate) style scenarios."""
    from repro.experiments.scenario import Scenario

    base = Scenario.paper_topology(
        args.topology, duration=args.duration, seed=args.seed, scale=args.scale
    )
    return [
        ("fig5-style", base.with_config(bf_capacity=1000)),
        ("fig6-style", base.with_config(tag_expiry=2.0)),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.qa.determinism",
        description="Double-run event-stream determinism check.",
    )
    parser.add_argument("--topology", type=int, default=1)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    failed = False
    for label, scenario in _default_scenarios(args):
        report = check_scenario(scenario, label=label)
        print(report.describe())
        failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
