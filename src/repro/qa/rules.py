"""The simlint rule catalogue.

Each rule is an AST visitor over one module; the scanner in
:mod:`repro.qa.lint` drives every rule over every file and applies
per-line ``# simlint: disable=SLxxx`` suppressions afterwards.  Rules
are *simulator-specific*: they encode invariants a generic linter
cannot know — that virtual time must never read the wall clock, that
randomness must thread :mod:`repro.sim.rng` streams, that telemetry
names must be declared before use.

Path scoping: rules that only apply to simulation-affecting code
compute a package-relative path (the part after the last ``repro``
path segment) and match it against subpackage prefixes.  Files outside
any ``repro`` tree — e.g. test fixtures — are always in scope, so rule
tests can exercise rules on standalone snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.qa.findings import Finding

#: Subpackages whose code executes under (or feeds) the virtual clock.
SIM_AFFECTING_PREFIXES = (
    "sim/",
    "ndn/",
    "core/",
    "filters/",
    "workload/",
    "topology/",
    "crypto/",
    "extensions/",
    "baselines/",
)

#: Wall-clock callables banned from simulation paths (SL001).
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Names importable ``from time import ...`` that read the wall clock.
_WALL_CLOCK_FROM_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}

#: Callable factories whose result is a legitimate deferred callback
#: (SL005 does not treat these as "invoked at schedule time").
_CALLBACK_FACTORIES = {"partial", "methodcaller", "attrgetter", "itemgetter"}

#: Registry variable names recognised by the SL003 collection pass.
_EVENT_REGISTRY_NAMES = ("KNOWN_EVENTS", "SPAN_EVENTS")
_METRIC_REGISTRY_NAMES = ("METRIC_NAMES",)
#: Decision-kind registries recognised for SL008
#: (:data:`repro.obs.audit.DECISION_KINDS`).
_DECISION_REGISTRY_NAMES = ("DECISION_KINDS",)
#: Perf-phase registries recognised for SL009
#: (:data:`repro.obs.perf.PERF_PHASES`).
_PHASE_REGISTRY_NAMES = ("PERF_PHASES",)
#: Fleet-phase registries recognised for SL015
#: (:data:`repro.obs.fleetperf.FLEETPERF_PHASES`).  Checked *before*
#: the generic ``*_PHASES`` suffix match so the fleet vocabulary never
#: leaks into SL009's perf-phase registry.
_FLEETPERF_REGISTRY_NAMES = ("FLEETPERF_PHASES",)
#: Statescope series registries recognised for SL016
#: (:data:`repro.obs.statescope.STATESCOPE_SERIES`).
_STATESCOPE_REGISTRY_NAMES = ("STATESCOPE_SERIES",)

#: Trace-hub methods whose first string argument is an event name.
_EVENT_CALL_ATTRS = {"emit", "wants", "subscribe", "unsubscribe"}

#: Metric-construction methods whose first string argument is a family
#: name.
_METRIC_CALL_ATTRS = {"counter", "gauge", "histogram", "add_probe"}


def package_relpath(path: str) -> str:
    """The path relative to the innermost ``repro`` package root.

    ``src/repro/ndn/node.py`` -> ``ndn/node.py``; a path with no
    ``repro`` segment maps to its bare filename (always in scope).
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        tail = parts[anchor + 1:]
        if tail:
            return "/".join(tail)
    return PurePath(path).name


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, or '' when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _first_str_arg(call: ast.Call) -> Tuple[str, bool]:
    """(value, is_literal) for a call's first positional argument."""
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value, True
    return "", False


_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSION_NODES = (
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@dataclass
class NodeIndex:
    """Shared per-module node lists, built in ONE walk of the AST.

    Every rule used to re-walk the whole tree; now the scanner builds
    this index once and each rule iterates only the node kind it cares
    about.  ``loop_calls`` additionally records which calls sit inside
    a repeating region (loop body/orelse, comprehension) — the SL006
    question — so that rule needs no walk of its own either.
    """

    calls: List[ast.Call] = field(default_factory=list)
    imports: List[ast.Import] = field(default_factory=list)
    import_froms: List[ast.ImportFrom] = field(default_factory=list)
    functions: List[ast.AST] = field(default_factory=list)
    loop_calls: List[ast.Call] = field(default_factory=list)


def build_index(tree: ast.Module) -> NodeIndex:
    index = NodeIndex()

    def visit(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, ast.Call):
            index.calls.append(node)
            if in_loop:
                index.loop_calls.append(node)
        elif isinstance(node, ast.Import):
            index.imports.append(node)
        elif isinstance(node, ast.ImportFrom):
            index.import_froms.append(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions.append(node)
        repeating: Tuple[ast.AST, ...] = ()
        if isinstance(node, _LOOP_NODES):
            # Only the body repeats; the iterable expression runs once.
            repeating = tuple(node.body) + tuple(node.orelse)
        elif isinstance(node, _COMPREHENSION_NODES):
            repeating = tuple(ast.iter_child_nodes(node))
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop or any(child is c for c in repeating))

    visit(tree, False)
    return index


@dataclass
class Module:
    """One parsed file under lint."""

    path: str
    source: str
    tree: ast.Module
    relpath: str = ""
    _index: Optional[NodeIndex] = None

    def __post_init__(self) -> None:
        if not self.relpath:
            self.relpath = package_relpath(self.path)

    @property
    def index(self) -> NodeIndex:
        if self._index is None:
            self._index = build_index(self.tree)
        return self._index


@dataclass
class LintContext:
    """Cross-file state shared by all rules (built in a first pass)."""

    declared_events: Set[str] = field(default_factory=set)
    declared_metrics: Set[str] = field(default_factory=set)
    declared_decisions: Set[str] = field(default_factory=set)
    declared_phases: Set[str] = field(default_factory=set)
    declared_fleet_phases: Set[str] = field(default_factory=set)
    declared_statescope: Set[str] = field(default_factory=set)

    def merge_registries(self, module: Module) -> None:
        """Collect module-level event/metric name declarations."""
        for node in module.tree.body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                strings = _collect_strings(value)
                if name in _EVENT_REGISTRY_NAMES or name.endswith("_EVENTS"):
                    self.declared_events.update(strings)
                elif name in _METRIC_REGISTRY_NAMES or name.endswith("_METRICS"):
                    self.declared_metrics.update(strings)
                elif name in _DECISION_REGISTRY_NAMES:
                    self.declared_decisions.update(strings)
                elif name in _FLEETPERF_REGISTRY_NAMES:
                    self.declared_fleet_phases.update(strings)
                elif name in _STATESCOPE_REGISTRY_NAMES:
                    self.declared_statescope.update(strings)
                elif name in _PHASE_REGISTRY_NAMES or name.endswith("_PHASES"):
                    self.declared_phases.update(strings)


def _collect_strings(node: ast.AST) -> List[str]:
    out: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.append(sub.value)
    return out


class Rule:
    """Base class: yield findings for one module."""

    code = "SL000"
    title = "abstract"
    #: True for rules that judge against cross-file registries and so
    #: cannot complete inside a single-file worker (``--jobs``).
    needs_context = False

    def applies_to(self, module: Module) -> bool:
        return True

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


@dataclass(frozen=True)
class Candidate:
    """A possible finding from a registry-dependent rule.

    In ``--jobs`` mode workers cannot judge these (the registries live
    in *other* files), so they ship candidates back to the parent,
    which judges them against the merged :class:`LintContext`.  Serial
    mode uses the same collect-then-judge path so there is exactly one
    implementation of each rule's logic.
    """

    rule: str
    path: str
    line: int
    col: int
    attr: str  #: the call attribute (``emit``, ``record_decision``, ...)
    name: str  #: the literal first argument ('' when non-literal)
    literal: bool


class ContextRule(Rule):
    """A rule split into per-file collection + registry judgement."""

    needs_context = True

    def collect(self, module: Module) -> Iterator[Candidate]:
        raise NotImplementedError

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        raise NotImplementedError

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for cand in self.collect(module):
            finding = self.judge(cand, ctx)
            if finding is not None:
                yield finding

    def _candidate(self, module: Module, node: ast.Call) -> Candidate:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else ""
        name, literal = _first_str_arg(node)
        return Candidate(
            rule=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            attr=attr,
            name=name,
            literal=literal,
        )

    def _cand_finding(self, cand: Candidate, message: str) -> Finding:
        return Finding(
            path=cand.path,
            line=cand.line,
            col=cand.col,
            rule=self.code,
            message=message,
        )


def _in_sim_scope(relpath: str) -> bool:
    """True for sim-affecting files (and for bare fixture filenames)."""
    if "/" not in relpath:
        return True
    return relpath.startswith(SIM_AFFECTING_PREFIXES)


class WallClockRule(Rule):
    """SL001: no wall-clock reads in simulation paths.

    Virtual time comes from ``sim.now``; a ``time.time()`` anywhere in
    a sim-affecting module couples event timing to the host machine and
    silently breaks same-seed reproducibility.  Wall-clock measurement
    belongs in :mod:`repro.obs` (profiler) and the experiment harness,
    both of which are out of scope for this rule.
    """

    code = "SL001"
    title = "no wall-clock reads in sim/ndn/core paths"

    def applies_to(self, module: Module) -> bool:
        return _in_sim_scope(module.relpath)

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        from_time_names: Set[str] = set()
        for node in module.index.import_froms:
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_FROM_TIME:
                        from_time_names.add(alias.asname or alias.name)
        for node in module.index.calls:
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS or dotted in from_time_names:
                yield self._finding(
                    module,
                    node,
                    f"wall-clock call {dotted}() in a simulation path; "
                    f"use virtual time (sim.now) instead",
                )


class StdlibRandomRule(Rule):
    """SL002: no stdlib ``random`` imports outside ``repro.sim.rng``.

    Every sim-affecting draw must come from a named, explicitly seeded
    stream so a single master seed determines the run.  A module-level
    ``import random`` invites unseeded ``random.Random()`` instances or
    — worse — module-level ``random.random()`` sharing one global RNG
    across components.  Thread :data:`repro.sim.rng.Stream` /
    :func:`repro.sim.rng.seeded_stream` instead.
    """

    code = "SL002"
    title = "no stdlib random outside repro.sim.rng"

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for node in module.index.imports:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self._finding(
                        module,
                        node,
                        "stdlib 'random' imported; thread a seeded "
                        "repro.sim.rng stream instead",
                    )
        for node in module.index.import_froms:
            if node.module == "random":
                yield self._finding(
                    module,
                    node,
                    "stdlib 'random' imported; thread a seeded "
                    "repro.sim.rng stream instead",
                )


class UndeclaredNameRule(ContextRule):
    """SL003: every emitted event / registered metric name is declared.

    A typo'd event name in ``trace.emit("node.rx.intrest", ...)``
    doesn't error — the record is published to zero subscribers and the
    telemetry silently drops.  This rule checks the literal first
    argument of trace-hub calls against the declared event registries
    (``KNOWN_EVENTS`` / ``SPAN_EVENTS`` / any ``*_EVENTS`` tuple) and
    of metric constructors against ``METRIC_NAMES``.  The rule only
    fires when the scan actually saw a registry declaration, so linting
    a lone snippet without its registries stays quiet.
    """

    code = "SL003"
    title = "event/metric names must be declared in a registry"

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _EVENT_CALL_ATTRS or func.attr in _METRIC_CALL_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if cand.attr in _EVENT_CALL_ATTRS:
            if not ctx.declared_events or not cand.literal:
                return None
            if cand.name != "*" and cand.name not in ctx.declared_events:
                return self._cand_finding(
                    cand,
                    f"event name {cand.name!r} is not declared in any "
                    f"event registry (KNOWN_EVENTS / SPAN_EVENTS)",
                )
            return None
        if not ctx.declared_metrics or not cand.literal:
            return None
        if cand.name not in ctx.declared_metrics:
            return self._cand_finding(
                cand,
                f"metric name {cand.name!r} is not declared in METRIC_NAMES",
            )
        return None


class MutableDefaultRule(Rule):
    """SL004: no mutable default arguments.

    A ``def f(x, acc=[])`` shares one list across every call — in a
    simulator that means state leaking *between runs* in the same
    process, the exact aliasing bug that makes "same seed, different
    result" reports unreproducible.
    """

    code = "SL004"
    title = "no mutable default arguments"

    _MUTABLE_CALLS = {
        "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
        "Counter", "deque",
    }

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for node in module.index.functions:
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self._finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); "
                        f"use None and construct inside the body",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted.split(".")[-1] in self._MUTABLE_CALLS
        return False


class ScheduleMisuseRule(Rule):
    """SL005: no negative delays or invoked callbacks in ``schedule()``.

    ``sim.schedule(-1.0, cb)`` raises at runtime — but only on the
    code path that reaches it.  ``sim.schedule(d, cb())`` is worse: the
    callback runs *immediately* (at schedule time) and ``None`` is
    scheduled, which detonates ``delay`` seconds later with a confusing
    "NoneType is not callable".  Both are caught statically here.
    ``functools.partial`` and friends are recognised as legitimate
    callback factories.
    """

    code = "SL005"
    title = "schedule() misuse: negative delay / callback invoked"

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for node in module.index.calls:
            func_name = _dotted_name(node.func).split(".")[-1]
            if func_name not in ("schedule", "schedule_at"):
                continue
            if node.args:
                delay = node.args[0]
                if (
                    isinstance(delay, ast.UnaryOp)
                    and isinstance(delay.op, ast.USub)
                    and isinstance(delay.operand, ast.Constant)
                    and isinstance(delay.operand.value, (int, float))
                ):
                    yield self._finding(
                        module,
                        delay,
                        f"negative literal passed to {func_name}(); the "
                        f"engine rejects past scheduling at runtime",
                    )
            if len(node.args) >= 2:
                callback = node.args[1]
                if isinstance(callback, ast.Call):
                    factory = _dotted_name(callback.func).split(".")[-1]
                    if factory not in _CALLBACK_FACTORIES:
                        yield self._finding(
                            module,
                            callback,
                            f"callback argument of {func_name}() is "
                            f"invoked at schedule time; pass the "
                            f"callable (or functools.partial) instead",
                        )


class DirectRunScenarioRule(Rule):
    """SL006: no direct ``run_scenario`` loops in experiment drivers.

    A driver that loops ``run_scenario`` serialises the whole grid in
    one process and bypasses the run cache — exactly the pattern the
    :mod:`repro.exec` engine replaces.  Enumerate the grid as
    :class:`~repro.exec.spec.ScenarioSpec` values and hand them to
    ``repro.exec.run_specs`` (which fans out over ``--jobs`` workers
    and consults the content-addressed cache); reduce the returned
    summaries afterwards.  Single straight-line calls stay legal — the
    rule only fires on calls inside a loop or comprehension.
    """

    code = "SL006"
    title = "no run_scenario loops in experiment drivers"

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith("experiments/")

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for node in module.index.loop_calls:
            name = _dotted_name(node.func).split(".")[-1]
            if name == "run_scenario":
                yield self._finding(
                    module,
                    node,
                    "run_scenario() called in a loop; enumerate "
                    "ScenarioSpec values and route them through "
                    "repro.exec.run_specs (parallel fan-out + run cache)",
                )


class FleetEventRule(ContextRule):
    """SL007: fleet/engine event emissions must be declared.

    The fleet observability layer (:mod:`repro.obs.fleet`,
    ``engine.events.jsonl``) has its own event namespace, emitted
    through ``_event(...)`` rather than the trace hub, so SL003 never
    sees it.  Same failure mode though: a typo'd name silently forks
    the on-disk schema and every downstream consumer (the regress CI
    job, offline analysis) misses those records.  This rule checks the
    literal first argument of fleet emission calls in ``obs``/``exec``
    modules against the declared ``*_EVENTS`` registries
    (:data:`repro.obs.fleet.FLEET_EVENTS`), and — like SL003 — stays
    quiet when the scan saw no registry at all.
    """

    code = "SL007"
    title = "fleet event names must be declared in FLEET_EVENTS"

    _EMIT_ATTRS = {"_event", "emit_event", "record_event"}

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith(("obs/", "exec/"))

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._EMIT_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if not ctx.declared_events or not cand.literal:
            return None
        if cand.name not in ctx.declared_events:
            return self._cand_finding(
                cand,
                f"fleet event name {cand.name!r} is not declared in any "
                f"event registry (FLEET_EVENTS / *_EVENTS)",
            )
        return None


class DecisionKindRule(ContextRule):
    """SL008: audit decision kinds must be declared in DECISION_KINDS.

    Every access-control decision enters the audit stream through
    ``record_decision(kind, ...)`` (:mod:`repro.obs.audit`), and the
    ``kind`` namespace is the schema of the audit report, the history
    metrics, and the Chrome-trace decision instants.  A typo'd kind at
    any call site would silently fork that schema; this rule checks the
    literal first argument of every ``record_decision`` call against
    the declared :data:`~repro.obs.audit.DECISION_KINDS` registry, and
    — like SL003/SL007 — stays quiet when the scan saw no registry.
    """

    code = "SL008"
    title = "audit decision kinds must be declared in DECISION_KINDS"

    _CALL_ATTRS = {"record_decision"}

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith(("obs/", "core/"))

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._CALL_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if not ctx.declared_decisions:
            return None
        if not cand.literal:
            return self._cand_finding(
                cand,
                "record_decision kind must be a string literal so the "
                "decision namespace stays statically checkable",
            )
        if cand.name not in ctx.declared_decisions:
            return self._cand_finding(
                cand,
                f"audit decision kind {cand.name!r} is not declared in "
                f"DECISION_KINDS (repro.obs.audit)",
            )
        return None


class PerfPhaseRule(ContextRule):
    """SL009: perf phase names must be declared in PERF_PHASES.

    The performance observatory's phase taxonomy
    (:data:`repro.obs.perf.PERF_PHASES`) is the schema of
    ``BENCH_simcore.json``, the per-phase regression gate, and the
    Chrome-trace counter tracks.  A typo'd phase at any
    ``perf.phase(...)`` / ``perf.account(...)`` call site would
    silently fork that schema — and a *computed* phase name would
    defeat static checking entirely, so non-literal names are findings
    in their own right (the SL008 discipline).  Like SL003/SL007/SL008
    the rule stays quiet when the scan saw no phase registry at all.
    """

    code = "SL009"
    title = "perf phase names must be declared in PERF_PHASES"

    _CALL_ATTRS = {"phase", "account"}

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith(SIM_AFFECTING_PREFIXES + ("obs/",))

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._CALL_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if not ctx.declared_phases:
            return None
        if not cand.literal:
            return self._cand_finding(
                cand,
                f"perf {cand.attr}() phase name must be a string literal "
                f"so the phase taxonomy stays statically checkable",
            )
        if cand.name not in ctx.declared_phases:
            return self._cand_finding(
                cand,
                f"perf phase {cand.name!r} is not declared in PERF_PHASES "
                f"(repro.obs.perf)",
            )
        return None


class FleetPhaseRule(ContextRule):
    """SL015: fleet phase names must be declared in FLEETPERF_PHASES.

    The fleet observatory's phase taxonomy
    (:data:`repro.obs.fleetperf.FLEETPERF_PHASES`) is the schema of
    ``BENCH_parallel.json``'s attribution block, the worker-lifecycle
    records the run cache replays, and the Chrome-trace worker lanes.
    A typo'd phase at any ``charge(...)`` call site — worker lifecycle
    or parent collector — would silently fork that schema, and a
    computed name would defeat static checking, so non-literal names
    are findings in their own right (the SL009 discipline).  Like
    SL003/SL007/SL008/SL009 the rule stays quiet when the scan saw no
    fleet-phase registry at all.
    """

    code = "SL015"
    title = "fleet phase names must be declared in FLEETPERF_PHASES"

    _CALL_ATTRS = {"charge"}

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith(("obs/", "exec/"))

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._CALL_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if not ctx.declared_fleet_phases:
            return None
        if not cand.literal:
            return self._cand_finding(
                cand,
                "fleet charge() phase name must be a string literal so "
                "the fleet phase taxonomy stays statically checkable",
            )
        if cand.name not in ctx.declared_fleet_phases:
            return self._cand_finding(
                cand,
                f"fleet phase {cand.name!r} is not declared in "
                f"FLEETPERF_PHASES (repro.obs.fleetperf)",
            )
        return None


class StateScopeSeriesRule(ContextRule):
    """SL016: statescope series names must be declared in
    STATESCOPE_SERIES.

    The state observatory's series vocabulary
    (:data:`repro.obs.statescope.STATESCOPE_SERIES`) is the schema of
    the ``state.*`` regression-gate metrics, the Chrome-trace counter
    tracks, and the conformance report's series table.  A typo'd name
    at a ``track(...)`` call site would silently open an unregistered
    series that the summary/merge layers drop, and a computed name
    would defeat static checking, so non-literal names are findings in
    their own right (the SL009/SL015 discipline).  Like those rules it
    stays quiet when the scan saw no statescope registry at all.
    """

    code = "SL016"
    title = "statescope series names must be declared in STATESCOPE_SERIES"

    _CALL_ATTRS = {"track"}

    def applies_to(self, module: Module) -> bool:
        if "/" not in module.relpath:
            return True
        return module.relpath.startswith(("obs/", "exec/"))

    def collect(self, module: Module) -> Iterator[Candidate]:
        for node in module.index.calls:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._CALL_ATTRS:
                yield self._candidate(module, node)

    def judge(self, cand: Candidate, ctx: LintContext) -> Optional[Finding]:
        if not ctx.declared_statescope:
            return None
        if not cand.literal:
            return self._cand_finding(
                cand,
                "statescope track() series name must be a string literal "
                "so the state-series vocabulary stays statically checkable",
            )
        if cand.name not in ctx.declared_statescope:
            return self._cand_finding(
                cand,
                f"state series {cand.name!r} is not declared in "
                f"STATESCOPE_SERIES (repro.obs.statescope)",
            )
        return None


#: Modules whose classes are instantiated per event / per packet, so an
#: instance ``__dict__`` is measurable allocation churn (SL014).  The
#: ``sim/`` and ``ndn/`` subpackages are hot wholesale; elsewhere only
#: the named files carry per-packet objects.
_HOT_SLOT_PREFIXES = ("sim/", "ndn/")
_HOT_SLOT_FILES = ("core/tag.py", "crypto/cost_model.py")

#: Base classes that manage instance layout themselves — subclassing
#: them with ``__slots__`` is either impossible or pointless.
_SLOTS_EXEMPT_BASES = (
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "Protocol", "ABC", "NamedTuple", "TypedDict",
    "Exception", "BaseException",
)


class SlotsRule(Rule):
    """SL014: classes in hot modules must declare ``__slots__``.

    The sim-core speed overhaul removed per-event/per-packet
    ``__dict__`` allocations (events, packets, PIT/CS records, faces,
    tags, cost entries); this rule keeps them removed.  A class in a
    declared hot module satisfies the rule by a literal ``__slots__``
    assignment in its body or by ``@dataclass(slots=True)``.  Classes
    that *need* a ``__dict__`` — monkey-patch targets like ``Node`` and
    ``Simulator``, one-per-topology objects like ``Link`` — carry a
    per-class ``# simlint: disable=SL014`` with a reason, which is the
    auditable list of exceptions.  Exception/Enum/Protocol subclasses
    are exempt (their metaclasses own the layout).
    """

    code = "SL014"
    title = "hot-path classes must declare __slots__"

    def applies_to(self, module: Module) -> bool:
        rel = module.relpath
        if "/" not in rel:
            return True
        return rel.startswith(_HOT_SLOT_PREFIXES) or rel in _HOT_SLOT_FILES

    def check(self, module: Module, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt_bases(node) or self._declares_slots(node):
                continue
            yield self._finding(
                module, node,
                f"class {node.name!r} in a hot module defines no "
                f"__slots__ (add __slots__, use @dataclass(slots=True), "
                f"or suppress with a reason if it must keep a __dict__)",
            )

    @staticmethod
    def _exempt_bases(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else ""
            )
            if name in _SLOTS_EXEMPT_BASES or name.endswith(
                ("Error", "Exception", "Warning")
            ):
                return True
        return False

    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets = ()
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = (stmt.target,)
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False


#: The active rule set, in code order.
ALL_RULES: Sequence[Rule] = (
    WallClockRule(),
    StdlibRandomRule(),
    UndeclaredNameRule(),
    MutableDefaultRule(),
    ScheduleMisuseRule(),
    DirectRunScenarioRule(),
    FleetEventRule(),
    DecisionKindRule(),
    PerfPhaseRule(),
    SlotsRule(),
    FleetPhaseRule(),
    StateScopeSeriesRule(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
