"""Fig. 5: content-retrieval latency vs. time for three BF sizes.

Paper setup: four topologies, Bloom filters sized for 500 / 2500 /
10000 items, per-second average latency over 2000 s.  The reported
trend: "the average content retrieval latency decreases as the size of
the BF increases", because small filters saturate and reset often, and
every reset forces a burst of signature verifications + re-insertions.

``reproduce_fig5`` returns, per (topology, BF size), the per-second
latency series and its mean; ``render_fig5`` prints them with
sparklines for a quick shape check against the paper's panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table, sparkline

#: The paper's three Bloom-filter sizes.
PAPER_BF_SIZES = (500, 2500, 10000)


@dataclass
class Fig5Point:
    """One curve of one panel: a (topology, BF size) combination."""

    topology: int
    bf_capacity: int
    series: List[Tuple[float, float]]
    mean_latency: float
    bf_resets_edge: int

    @property
    def label(self) -> str:
        return f"topo{self.topology}/bf{self.bf_capacity}"


def enumerate_fig5(
    topologies: Sequence[int] = (1,),
    bf_sizes: Sequence[int] = PAPER_BF_SIZES,
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
    tag_expiry: float = 10.0,
    literal_costs: bool = True,
) -> List[ScenarioSpec]:
    """The (topology, BF size) grid as picklable scenario specs."""
    from repro.crypto.cost_model import PAPER_COST_MODEL, PAPER_LITERAL_COST_MODEL

    cost_model = PAPER_LITERAL_COST_MODEL if literal_costs else PAPER_COST_MODEL
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            overrides=dict(
                bf_capacity=bf_capacity, tag_expiry=tag_expiry, cost_model=cost_model
            ),
        )
        for topology in topologies
        for bf_capacity in bf_sizes
    ]


def reproduce_fig5(
    topologies: Sequence[int] = (1,),
    bf_sizes: Sequence[int] = PAPER_BF_SIZES,
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
    tag_expiry: float = 10.0,
    literal_costs: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Fig5Point]:
    """Regenerate Fig. 5's series (defaults are CI-scale; pass
    ``topologies=(1,2,3,4), duration=2000, scale=1.0`` for paper scale).

    ``literal_costs`` applies the paper's computation-latency spreads
    verbatim (see ``PAPER_LITERAL_COST_MODEL``): under that reading,
    re-validation bursts after Bloom-filter resets carry ~ms costs and
    the latency separation between filter sizes — Fig. 5's entire
    point — emerges.  Set it False for the conservative model.
    ``jobs`` / ``cache_dir`` / ``use_cache`` go to the
    :mod:`repro.exec` engine.
    """
    specs = enumerate_fig5(
        topologies, bf_sizes, duration, seed, scale, tag_expiry, literal_costs
    )
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="fig5")
    points: List[Fig5Point] = []
    for spec, summary in zip(specs, summaries):
        points.append(
            Fig5Point(
                topology=spec.topology,
                bf_capacity=dict(spec.overrides)["bf_capacity"],
                series=summary.latency_series(bucket=1.0),
                mean_latency=summary.mean_latency() or 0.0,
                bf_resets_edge=summary.total_bf_resets(edge=True),
            )
        )
    return points


def render_fig5(points: List[Fig5Point]) -> str:
    rows = [
        [
            p.label,
            p.mean_latency,
            p.bf_resets_edge,
            sparkline([latency for _, latency in p.series], width=40),
        ]
        for p in points
    ]
    return render_table(
        ["series", "mean latency (s)", "edge BF resets", "latency shape over time"],
        rows,
        title="Fig. 5 — client content-retrieval latency by Bloom-filter size",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_fig5(reproduce_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
