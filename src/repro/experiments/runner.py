"""Scenario assembly and execution.

``run_scenario`` turns a :class:`~repro.experiments.scenario.Scenario`
into a live simulation — providers with published catalogs, TACTIC (or
baseline) routers, access points, enrolled clients, the attacker mix —
runs it, and returns a :class:`RunResult` exposing every quantity the
paper's figures and tables report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.accconf import ACCCONF_SCHEME
from repro.baselines.client_side import CLIENT_SIDE_SCHEME
from repro.baselines.interfaces import SchemeSpec
from repro.baselines.no_bloom import NO_BLOOM_SCHEME
from repro.baselines.provider_auth import PROVIDER_AUTH_SCHEME
from repro.core.attacker import Attacker, AttackerMode
from repro.core.client import Client
from repro.core.config import TacticConfig
from repro.core.core_router import CoreRouter
from repro.core.edge_router import EdgeRouter
from repro.core.access_path import expected_access_path
from repro.core.metrics import MetricsCollector, OpCounters
from repro.core.provider import Provider
from repro.crypto.pki import Certificate, CertificateStore
from repro.crypto.rsa import generate_keypair
from repro.crypto.sim_signature import SimulatedKeyPair
from repro.experiments.scenario import Scenario
from repro.ndn.link import Face
from repro.ndn.network import Network
from repro.ndn.node import AccessPoint
from repro.ndn.packets import reset_nonce_counter
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog, build_catalog

TACTIC_SCHEME = SchemeSpec(
    name="tactic",
    make_edge_router=lambda sim, nid, cfg, certs, met=None: EdgeRouter(
        sim, nid, cfg, certs, met
    ),
    make_core_router=lambda sim, nid, cfg, certs, met=None: CoreRouter(
        sim, nid, cfg, certs, met
    ),
    make_provider=lambda sim, nid, cfg, certs, kp: Provider(sim, nid, cfg, certs, kp),
    clients_register=True,
)

SCHEME_REGISTRY: Dict[str, SchemeSpec] = {
    "tactic": TACTIC_SCHEME,
    "no_bloom": NO_BLOOM_SCHEME,
    "client_side": CLIENT_SIDE_SCHEME,
    "provider_auth": PROVIDER_AUTH_SCHEME,
    "accconf": ACCCONF_SCHEME,
}


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    scenario: Scenario
    config: TacticConfig
    metrics: MetricsCollector
    network: Network
    sim: Simulator
    providers: List[Provider]
    clients: List[Client]
    attackers: List[Attacker]
    wall_seconds: float = 0.0
    #: The run's :class:`~repro.obs.session.TelemetrySession`, when one
    #: was attached (None for untelemetered runs).
    telemetry: Optional[object] = None
    #: The run's :class:`~repro.obs.audit.DecisionAudit`, when decision
    #: auditing was on (None otherwise).
    audit: Optional[object] = None
    #: The run's :class:`~repro.obs.flightrec.FlightRecorder`, when one
    #: was installed (None otherwise).
    flightrec: Optional[object] = None
    #: The run's :class:`~repro.obs.statescope.StateScope`, when state
    #: accounting was on (None otherwise); already finalized.
    statescope: Optional[object] = None

    # ------------------------------------------------------------------
    # Table IV quantities
    # ------------------------------------------------------------------
    def client_delivery_ratio(self) -> float:
        return self.metrics.delivery_ratio(attackers=False)

    def attacker_delivery_ratio(self) -> float:
        return self.metrics.delivery_ratio(attackers=True)

    def delivery_table_row(self) -> Dict[str, float]:
        return {
            "client_requested": self.metrics.total_requested(False),
            "client_received": self.metrics.total_received(False),
            "client_ratio": self.client_delivery_ratio(),
            "attacker_requested": self.metrics.total_requested(True),
            "attacker_received": self.metrics.total_received(True),
            "attacker_ratio": self.attacker_delivery_ratio(),
        }

    # ------------------------------------------------------------------
    # Fig. 5 / Fig. 6 quantities
    # ------------------------------------------------------------------
    def latency_series(self, bucket: float = 1.0) -> List[Tuple[float, float]]:
        return self.metrics.latency_series(bucket)

    def mean_latency(self) -> Optional[float]:
        return self.metrics.mean_latency()

    def tag_rates(self) -> Tuple[float, float]:
        return self.metrics.tag_rates(self.config.duration)

    # ------------------------------------------------------------------
    # Fig. 7 / Fig. 8 / Table V quantities
    # ------------------------------------------------------------------
    def operation_counts(self, edge: bool) -> OpCounters:
        return self.metrics.merged_counters(edge=edge)

    def reset_threshold(self, edge: bool) -> Optional[float]:
        return self.metrics.reset_threshold(edge=edge)

    def total_bf_resets(self, edge: bool) -> int:
        return self.metrics.total_bf_resets(edge=edge)

    # ------------------------------------------------------------------
    # Network-level
    # ------------------------------------------------------------------
    def network_bytes(self) -> int:
        return self.network.total_bytes()

    def network_drops(self) -> int:
        return self.network.total_drops()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def to_summary(self, latency_bucket: float = 1.0):
        """Extract the compact, picklable
        :class:`~repro.exec.summary.RunSummary` carrying every quantity
        the figures and tables read (drops the live simulation)."""
        from repro.exec.summary import summarize

        return summarize(self, latency_bucket=latency_bucket)


@dataclass
class _Assembly:
    sim: Simulator
    network: Network
    cert_store: CertificateStore
    metrics: MetricsCollector
    providers: List[Provider] = field(default_factory=list)
    clients: List[Client] = field(default_factory=list)
    attackers: List[Attacker] = field(default_factory=list)


def _make_keypair(config: TacticConfig, rng) -> object:
    if config.signature_scheme == "rsa":
        return generate_keypair(bits=config.rsa_bits, rng=rng)
    return SimulatedKeyPair.generate(rng)


def _access_level_plan(config: TacticConfig) -> List[Optional[int]]:
    """Per-object access levels for one provider's catalog.

    The first ``public_fraction`` of slots publish as public (ALD NULL);
    the rest cycle through levels 1..num_access_levels.
    """
    total = config.objects_per_provider
    num_public = round(config.public_fraction * total)
    levels: List[Optional[int]] = [None] * num_public
    for i in range(total - num_public):
        levels.append(1 + i % config.num_access_levels)
    return levels


def build_assembly(scenario: Scenario) -> _Assembly:
    """Materialize a scenario into live nodes (exposed for tests)."""
    spec = SCHEME_REGISTRY[scenario.scheme]
    config = spec.config_transform(scenario.config)
    config.validate()
    plan = scenario.plan

    # Fresh process-global allocators: nonce and face-id values must
    # depend only on the scenario, not on earlier runs in this process
    # (state-footprint byte accounting is compared bit-for-bit between
    # serial and per-worker executions).
    reset_nonce_counter()
    Face.reset_face_ids()

    sim = Simulator(seed=config.seed)
    network = Network(sim)
    cert_store = CertificateStore()
    metrics = MetricsCollector()
    assembly = _Assembly(sim, network, cert_store, metrics)
    key_rng = sim.rng.stream("keys")
    population_rng = sim.rng.stream("population")

    # --- Providers -----------------------------------------------------
    for provider_id in plan.provider_ids:
        keypair = _make_keypair(config, key_rng)
        provider = spec.make_provider(sim, provider_id, config, cert_store, keypair)
        provider.publish_catalog(_access_level_plan(config))
        network.add_node(provider, routable=True)
        assembly.providers.append(provider)

    # --- Routers and access points -------------------------------------
    for core_id in plan.core_ids:
        network.add_node(
            spec.make_core_router(sim, core_id, config, cert_store, metrics),
            routable=True,
        )
    for edge_id in plan.edge_ids:
        network.add_node(
            spec.make_edge_router(sim, edge_id, config, cert_store, metrics),
            routable=True,
        )
    for ap_id in plan.ap_ids:
        network.add_node(AccessPoint(sim, ap_id), routable=False)

    # --- Users ----------------------------------------------------------
    catalog = build_catalog(assembly.providers, shuffle_seed=config.seed)
    _build_clients(scenario, config, assembly, catalog, population_rng, key_rng)
    _build_attackers(scenario, config, assembly, catalog, population_rng)

    # --- Links ------------------------------------------------------
    for link_spec in plan.links:
        network.connect(
            network.node(link_spec.a),
            network.node(link_spec.b),
            bandwidth_bps=link_spec.bandwidth_bps,
            latency=link_spec.latency,
            loss_rate=config.edge_loss_rate if link_spec.kind == "edge" else 0.0,
        )
    for ap_id, edge_id in plan.ap_edge.items():
        ap = network.node(ap_id)
        ap.set_uplink(ap.face_toward(network.node(edge_id)))

    # --- Routes ---------------------------------------------------------
    for provider in assembly.providers:
        network.announce_prefix(provider.prefix, provider)

    return assembly


def _build_clients(scenario, config, assembly, catalog, population_rng, key_rng):
    plan = scenario.plan
    client_cls = SCHEME_REGISTRY[scenario.scheme].client_factory or Client
    for client_id in plan.client_ids:
        access_level = population_rng.randint(1, config.num_access_levels)
        stats = assembly.metrics.user(client_id, is_attacker=False)
        keypair = _make_keypair(config, key_rng)
        client = client_cls(
            assembly.sim,
            client_id,
            config,
            catalog.accessible_to(access_level),
            stats,
            access_level=access_level,
            keypair=keypair,
        )
        for provider in assembly.providers:
            client.credentials[provider.node_id] = provider.directory.enroll(
                client_id, access_level, public_key=keypair.public
            )
        # Client certificate, resolvable via the tag's Pubu locator
        # (used only in the client-signature authentication mode).
        assembly.cert_store.register(
            Certificate(
                locator=f"/{client_id}/KEY/pub",
                public_key=keypair.public,
                subject=client_id,
            )
        )
        assembly.network.add_node(client, routable=False)
        assembly.clients.append(client)


def _build_attackers(scenario, config, assembly, catalog, population_rng):
    plan = scenario.plan
    modes = scenario.attacker_modes
    if not modes:
        return
    locators = {p.node_id: p.key_locator for p in assembly.providers}
    target_catalog = catalog.private_only()
    if len(target_catalog) == 0:
        target_catalog = catalog  # all-public runs: attack everything
    for index, attacker_id in enumerate(plan.attacker_ids):
        mode = modes[index % len(modes)]
        victim = None
        if mode is AttackerMode.SHARED_TAG:
            victim = _pick_victim(plan, assembly.clients, attacker_id)
            if victim is None:
                mode = AttackerMode.NO_TAG  # degenerate topology: no victim
        stats = assembly.metrics.user(attacker_id, is_attacker=True)
        attacker = Attacker(
            assembly.sim,
            attacker_id,
            config,
            target_catalog,
            stats,
            mode=mode,
            victim=victim,
            provider_key_locators=locators,
        )
        attacker.expected_access_path = expected_access_path(
            [plan.user_ap[attacker_id]]
        )
        if mode in (AttackerMode.EXPIRED_TAG, AttackerMode.LOW_ACCESS_LEVEL):
            level = 0 if mode is AttackerMode.LOW_ACCESS_LEVEL else config.num_access_levels
            for provider in assembly.providers:
                attacker.credentials[provider.node_id] = provider.directory.enroll(
                    attacker_id, level
                )
        assembly.network.add_node(attacker, routable=False)
        assembly.attackers.append(attacker)


def _pick_victim(plan, clients, attacker_id):
    """A client attached to a *different* access point (the paper's
    assumption: "the client and the unauthorized user are not
    co-located under the same access point")."""
    attacker_ap = plan.user_ap[attacker_id]
    for client in clients:
        if plan.user_ap[client.node_id] != attacker_ap:
            return client
    return None


def _seed_stale_tags(assembly: _Assembly) -> None:
    """Issue time-zero tags to EXPIRED_TAG attackers; they start
    requesting only after the tags die (threat (c))."""
    for attacker in assembly.attackers:
        if attacker.mode is not AttackerMode.EXPIRED_TAG:
            continue
        for provider in assembly.providers:
            tag = provider.issue_tag_direct(
                attacker.node_id, attacker.expected_access_path
            )
            if tag is not None:
                attacker.stale_tags[provider.node_id] = tag


def run_scenario(
    scenario: Scenario,
    telemetry: Optional[object] = None,
    sanitizer: Optional[object] = None,
    audit: Optional[object] = None,
    flightrec: Optional[object] = None,
    perf: Optional[object] = None,
    statescope: Optional[object] = None,
) -> RunResult:
    """Assemble and execute one scenario end to end.

    ``telemetry`` overrides the process-default
    :class:`~repro.obs.session.TelemetryConfig` (installed by the CLI
    via :func:`~repro.obs.session.set_default_telemetry`); when neither
    is set the run carries no instruments at all.  ``sanitizer``
    installs an explicit :class:`~repro.qa.simsan.SimSan`; when omitted
    one is installed iff ``REPRO_SIMSAN=1`` is set in the environment.
    ``audit`` attaches an explicit :class:`~repro.obs.audit.
    DecisionAudit` (env fallback ``REPRO_AUDIT``/``REPRO_AUDIT_OUT``);
    ``flightrec`` installs an explicit :class:`~repro.obs.flightrec.
    FlightRecorder` (env fallback ``REPRO_FLIGHTREC``).  ``perf``
    installs an explicit :class:`~repro.obs.perf.PerfObservatory`
    (benchmarks use this for a tight measurement window: it is
    installed after any session-created observatory, so it wins, and
    its start/stop bracket exactly the ``sim.run`` call — which is
    what makes the phase-coverage figure honest).  ``statescope``
    installs an explicit :class:`~repro.obs.statescope.StateScope`
    (env fallback ``REPRO_STATESCOPE``/``REPRO_STATESCOPE_OUT``); the
    scope is finalized before the telemetry session so its record rides
    the session record and its timeline the Chrome trace.
    """
    from repro.obs.audit import maybe_audit
    from repro.obs.flightrec import maybe_flightrec
    from repro.obs.session import TelemetrySession, current_telemetry
    from repro.obs.statescope import maybe_statescope
    from repro.qa.simsan import maybe_install

    assembly = build_assembly(scenario)
    if sanitizer is not None:
        sanitizer.install(assembly.sim, assembly.network)
    else:
        sanitizer = maybe_install(assembly.sim, assembly.network)
    config = SCHEME_REGISTRY[scenario.scheme].config_transform(scenario.config)
    sim = assembly.sim
    start_rng = sim.rng.stream("start-offsets")
    duration = config.duration
    horizon = duration + config.drain_time

    # Decision auditing and the flight recorder attach before any tag
    # is issued (_seed_stale_tags below feeds the oracle's issued-tag
    # registry through the provider hook).
    if audit is None:
        audit = maybe_audit()
    if audit is not None:
        audit.attach(assembly.network)
    if flightrec is None:
        flightrec = maybe_flightrec(label=scenario.label or scenario.scheme)
    if flightrec is not None:
        flightrec.install(sim, network=assembly.network)
        if sanitizer is not None:
            sanitizer.flightrec = flightrec
        if audit is not None:
            audit.sink = flightrec.on_decision

    telemetry_config = telemetry if telemetry is not None else current_telemetry()
    session = None
    if telemetry_config is not None and telemetry_config.enabled():
        session = TelemetrySession(
            telemetry_config,
            sim,
            network=assembly.network,
            collector=assembly.metrics,
            label=scenario.label or scenario.scheme,
            horizon=horizon,
        )
    if session is not None and audit is not None:
        session.audit = audit
    if statescope is None:
        statescope = maybe_statescope()
    if statescope is not None:
        statescope.install(
            sim,
            network=assembly.network,
            config=config,
            audit=audit,
            label=scenario.label or scenario.scheme,
        )
        statescope.start(horizon=horizon)
        if session is not None:
            session.statescope = statescope
    if perf is not None:
        perf.install(sim, network=assembly.network)

    _seed_stale_tags(assembly)

    for client in assembly.clients:
        client.start(at=start_rng.uniform(0.0, 1.0), until=duration)
    for attacker in assembly.attackers:
        offset = start_rng.uniform(0.0, 1.0)
        if attacker.mode is AttackerMode.EXPIRED_TAG:
            offset += config.tag_expiry + 0.5  # wait out the stale tag
        attacker.start(at=min(offset, duration), until=duration)

    if perf is not None:
        perf.start()
    began = time.perf_counter()
    sim.run(until=horizon)
    wall = time.perf_counter() - began
    if perf is not None:
        perf.stop()
        perf.uninstall()

    if statescope is not None:
        statescope.finalize()
    if session is not None:
        session.finalize(wall_seconds=wall)
    if sanitizer is not None:
        sanitizer.finish()
    if flightrec is not None:
        flightrec.finish()

    return RunResult(
        scenario=scenario,
        config=config,
        metrics=assembly.metrics,
        network=assembly.network,
        sim=sim,
        providers=assembly.providers,
        clients=assembly.clients,
        attackers=assembly.attackers,
        wall_seconds=wall,
        telemetry=session,
        audit=audit,
        flightrec=flightrec,
        statescope=statescope,
    )
