"""Fig. 8: requests absorbed before a Bloom-filter reset.

Paper setup (Topology 1): sweep the maximum FPP (1e-4 vs 1e-2) and the
tag expiry (10 / 100 / 1000 s); measure how many requests a router
receives before its filter saturates and resets (higher is better).

Paper findings: "for a fixed FPP ... the amount of requests for one BF
reset does not considerably change with different tag validity periods.
However, increasing the FPP from 0.0001 to 0.01 significantly changes
the expected number of requests for a BF reset"; core routers follow
the same trend at far larger absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table


@dataclass
class Fig8Point:
    tag_expiry: float
    max_fpp: float
    edge_requests_per_reset: Optional[float]
    core_requests_per_reset: Optional[float]
    edge_resets: int
    core_resets: int


def enumerate_fig8(
    topology: int = 1,
    tag_expiries: Sequence[float] = (10.0, 100.0),
    fpps: Sequence[float] = (1e-4, 1e-2),
    duration: float = 60.0,
    seed: int = 1,
    scale: float = 0.3,
    bf_capacity: int = 12,
) -> List[ScenarioSpec]:
    """The (tag expiry, FPP) grid as picklable scenario specs."""
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            overrides=dict(
                tag_expiry=expiry, bf_max_fpp=fpp, bf_capacity=bf_capacity
            ),
        )
        for expiry in tag_expiries
        for fpp in fpps
    ]


def reproduce_fig8(
    topology: int = 1,
    tag_expiries: Sequence[float] = (10.0, 100.0),
    fpps: Sequence[float] = (1e-4, 1e-2),
    duration: float = 60.0,
    seed: int = 1,
    scale: float = 0.3,
    bf_capacity: int = 12,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Fig8Point]:
    """Regenerate Fig. 8's bars.

    The default Bloom capacity is the paper's 500 scaled down by
    roughly the same factor as the user population and run duration, so
    filters saturate within CI-scale runs; the paper's configuration is
    ``bf_capacity=500, duration=2000, scale=1.0, tag_expiries=(10, 100,
    1000)``.  The FPP trend is capacity-independent.
    """
    specs = enumerate_fig8(
        topology, tag_expiries, fpps, duration, seed, scale, bf_capacity
    )
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="fig8")
    points: List[Fig8Point] = []
    for spec, summary in zip(specs, summaries):
        overrides = dict(spec.overrides)
        points.append(
            Fig8Point(
                tag_expiry=overrides["tag_expiry"],
                max_fpp=overrides["bf_max_fpp"],
                edge_requests_per_reset=summary.reset_threshold(edge=True),
                core_requests_per_reset=summary.reset_threshold(edge=False),
                edge_resets=summary.total_bf_resets(edge=True),
                core_resets=summary.total_bf_resets(edge=False),
            )
        )
    return points


def render_fig8(points: List[Fig8Point]) -> str:
    rows = [
        [
            p.tag_expiry,
            p.max_fpp,
            p.edge_requests_per_reset if p.edge_requests_per_reset is not None else "no reset",
            p.edge_resets,
            p.core_requests_per_reset if p.core_requests_per_reset is not None else "no reset",
            p.core_resets,
        ]
        for p in points
    ]
    return render_table(
        [
            "tag expiry (s)",
            "max FPP",
            "edge req/reset",
            "edge resets",
            "core req/reset",
            "core resets",
        ],
        rows,
        title="Fig. 8 — requests absorbed before a Bloom-filter reset",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_fig8(reproduce_fig8()))


if __name__ == "__main__":  # pragma: no cover
    main()
