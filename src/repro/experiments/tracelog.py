"""Packet-level trace logging: capture, persist, and summarize.

The substrate emits trace records for every packet arrival
(``node.rx.interest`` / ``node.rx.data`` / ``node.rx.nack``) and every
drop-tail loss (``link.drop``).  :class:`TraceRecorder` collects them
(optionally filtered); :func:`write_jsonl` / :func:`read_jsonl` persist
them; :func:`summarize` reduces a capture to per-event and per-node
counts — the debugging loop for protocol work.

>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> recorder = TraceRecorder(sim, events=("node.rx.data",))
>>> # ... run a simulation ...
>>> recorder.stop()
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.tracing import TraceRecord

#: Every event name the substrate currently emits (``span.*`` lifecycle
#: events live separately in :data:`repro.obs.spans.SPAN_EVENTS`).
KNOWN_EVENTS = (
    "node.rx.interest",
    "node.rx.data",
    "node.rx.nack",
    "node.tx.interest",
    "node.tx.data",
    "node.tx.nack",
    "pit.timeout",
    "pit.aggregate",
    "cs.hit",
    "link.drop",
    "audit.decision",
)


class TraceRecorder:
    """Subscribes to trace events and buffers them in arrival order."""

    def __init__(
        self,
        sim: Simulator,
        events: Sequence[str] = KNOWN_EVENTS,
        limit: int = 0,
    ) -> None:
        self.sim = sim
        self.events = tuple(events)
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._active = True
        for event in self.events:
            sim.trace.subscribe(event, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        if not self._active:
            return
        if self.limit and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(record)

    def stop(self) -> None:
        """Detach from the hub; buffered records remain readable."""
        self._active = False
        for event in self.events:
            self.sim.trace.unsubscribe(event, self._on_record)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, name: Optional[str] = None, node: Optional[str] = None
               ) -> List[TraceRecord]:
        out = self.records
        if name is not None:
            out = [r for r in out if r.name == name]
        if node is not None:
            out = [r for r in out if r.payload.get("node") == node]
        return list(out)


def write_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Persist records as JSON lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(
                json.dumps(
                    {"event": record.name, "time": record.time, **record.payload}
                )
            )
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load records persisted by :func:`write_jsonl`."""
    records: List[TraceRecord] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            name = payload.pop("event")
            time = payload.pop("time")
            records.append(TraceRecord(name=name, time=time, payload=payload))
    return records


@dataclass
class TraceSummary:
    """Aggregate view of one capture."""

    total: int = 0
    by_event: Dict[str, int] = field(default_factory=dict)
    by_node: Dict[str, int] = field(default_factory=dict)
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def rate(self) -> float:
        """Records per virtual second across the captured span.

        Convention: an empty capture rates 0.0; a capture whose records
        all share one timestamp (including a single record) has no
        measurable span and is rated over a minimal 1-second window —
        i.e. ``float(total)`` — rather than silently reporting 0.0.
        """
        if self.total == 0 or self.first_time is None:
            return 0.0
        span = (self.last_time or 0.0) - self.first_time
        if span <= 0.0:
            return float(self.total)
        return self.total / span


def summarize(records: Sequence[TraceRecord]) -> TraceSummary:
    """Reduce a capture to counts and time bounds."""
    by_event: Counter = Counter()
    by_node: Counter = Counter()
    first = last = None
    for record in records:
        by_event[record.name] += 1
        node = record.payload.get("node") or record.payload.get("src")
        if node:
            by_node[node] += 1
        if first is None or record.time < first:
            first = record.time
        if last is None or record.time > last:
            last = record.time
    return TraceSummary(
        total=len(records),
        by_event=dict(by_event),
        by_node=dict(by_node),
        first_time=first,
        last_time=last,
    )
