"""Experiment harness: scenarios, the runner, and per-artifact modules.

One module per paper artifact regenerates its rows/series:

==========  ====================================================
Artifact    Module
==========  ====================================================
Fig. 5      :mod:`repro.experiments.fig5_latency`
Fig. 6      :mod:`repro.experiments.fig6_tag_rates`
Fig. 7      :mod:`repro.experiments.fig7_operations`
Fig. 8      :mod:`repro.experiments.fig8_bf_reset`
Table II    :mod:`repro.experiments.table2_comparison`
Table IV    :mod:`repro.experiments.table4_delivery`
Table V     :mod:`repro.experiments.table5_bf_resets`
==========  ====================================================
"""

from repro.experiments.runner import (
    RunResult,
    SCHEME_REGISTRY,
    build_assembly,
    run_scenario,
)
from repro.experiments.scenario import Scenario
from repro.experiments.sweeps import SweepSpec, aggregate, render_sweep, run_sweep

__all__ = [
    "RunResult",
    "SCHEME_REGISTRY",
    "Scenario",
    "SweepSpec",
    "aggregate",
    "build_assembly",
    "render_sweep",
    "run_scenario",
    "run_sweep",
]
