"""Table IV: clients' and attackers' successful delivery ratios.

Paper numbers (2000 s, five seeds):

=============  ========  ========  ========  ========
               Topo 1    Topo 2    Topo 3    Topo 4
=============  ========  ========  ========  ========
Client ratio    0.9999    0.9998    0.9998    0.9997
Attacker ratio  0.0       0.0044    0.0025    0.0078
=============  ========  ========  ========  ========

"Only attackers with invalid signatures were successful in retrieving
content, which is caused by BFs' false positives."  The reproduction
preserves the shape: clients near 1.0, attackers near 0, the rare
attacker success attributable to a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table

#: The paper's Table IV cells, for EXPERIMENTS.md comparison.
PAPER_TABLE4 = {
    1: {"client_ratio": 0.9999, "attacker_ratio": 0.0},
    2: {"client_ratio": 0.9998, "attacker_ratio": 0.0044},
    3: {"client_ratio": 0.9998, "attacker_ratio": 0.0025},
    4: {"client_ratio": 0.9997, "attacker_ratio": 0.0078},
}


@dataclass
class Table4Row:
    topology: int
    client_requested: int
    client_received: int
    client_ratio: float
    attacker_requested: int
    attacker_received: int
    attacker_ratio: float


def enumerate_table4(
    topologies: Sequence[int] = (1,),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
) -> List[ScenarioSpec]:
    """One spec per requested topology."""
    return [
        ScenarioSpec.make(topology=topology, duration=duration, seed=seed, scale=scale)
        for topology in topologies
    ]


def reproduce_table4(
    topologies: Sequence[int] = (1,),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Table4Row]:
    """Regenerate Table IV rows (CI-scale defaults; paper scale is
    ``topologies=(1,2,3,4), duration=2000, scale=1.0``)."""
    specs = enumerate_table4(topologies, duration, seed, scale)
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="table4")
    rows: List[Table4Row] = []
    for spec, summary in zip(specs, summaries):
        topology = spec.topology
        cells: Dict[str, float] = summary.delivery_table_row()
        rows.append(
            Table4Row(
                topology=topology,
                client_requested=int(cells["client_requested"]),
                client_received=int(cells["client_received"]),
                client_ratio=cells["client_ratio"],
                attacker_requested=int(cells["attacker_requested"]),
                attacker_received=int(cells["attacker_received"]),
                attacker_ratio=cells["attacker_ratio"],
            )
        )
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    table_rows = [
        [
            f"Topo {r.topology}",
            r.client_requested,
            r.client_received,
            round(r.client_ratio, 4),
            r.attacker_requested,
            r.attacker_received,
            round(r.attacker_ratio, 4),
        ]
        for r in rows
    ]
    return render_table(
        [
            "topology",
            "client req",
            "client recv",
            "client ratio",
            "attacker req",
            "attacker recv",
            "attacker ratio",
        ],
        table_rows,
        title="Table IV — successful delivery ratio, clients vs. attackers",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table4(reproduce_table4()))


if __name__ == "__main__":  # pragma: no cover
    main()
