"""Parameter sweeps with multi-seed statistics.

The paper "averaged the results of each topology over five runs with
different seeds"; this module provides that machinery generically: a
grid of configuration points, N seeds per point, and per-metric
aggregates (mean, standard deviation, Student-t confidence interval).

>>> from repro.experiments.sweeps import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     base=dict(topology=1, duration=4.0, scale=0.15),
...     grid={"tag_expiry": [5.0, 50.0]},
...     seeds=[1, 2],
...     metrics={"q_rate": lambda r: r.tag_rates()[0]},
... )
>>> points = run_sweep(spec)          # doctest: +SKIP
>>> points[0].aggregate("q_rate").mean  # doctest: +SKIP
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs

#: Metric extractors receive a :class:`~repro.exec.summary.RunSummary`,
#: whose accessors mirror ``RunResult`` — extractors written against
#: either API work unchanged.
MetricFn = Callable[[Any], float]

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def t_critical(dof: int) -> float:
    """95% two-sided t value; prefers scipy when available, falls back
    to the table (clamped at the asymptotic 1.96 beyond it)."""
    if dof <= 0:
        return float("nan")
    try:
        from scipy import stats

        return float(stats.t.ppf(0.975, dof))
    except Exception:  # pragma: no cover - scipy is normally installed
        return _T95.get(dof, 1.96)


@dataclass(frozen=True)
class Aggregate:
    """Mean / spread / CI of one metric across seeds."""

    mean: float
    std: float
    count: int
    ci_halfwidth: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth


def aggregate(samples: Sequence[float]) -> Aggregate:
    """Aggregate seed samples into mean/std/95%-CI.

    >>> agg = aggregate([1.0, 2.0, 3.0])
    >>> agg.mean
    2.0
    >>> agg.ci_low < 2.0 < agg.ci_high
    True
    """
    if not samples:
        raise ValueError("no samples")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return Aggregate(mean=mean, std=0.0, count=1, ci_halfwidth=0.0)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    halfwidth = t_critical(n - 1) * std / math.sqrt(n)
    return Aggregate(mean=mean, std=std, count=n, ci_halfwidth=halfwidth)


@dataclass
class SweepSpec:
    """Declarative description of a sweep.

    ``base`` holds fixed scenario parameters (``topology``, ``duration``,
    ``scale``, ``scheme``); ``grid`` maps TacticConfig field names to the
    values to sweep (full cross-product); ``metrics`` maps metric names
    to extractor functions over :class:`RunResult`.
    """

    base: Dict[str, Any]
    grid: Dict[str, List[Any]]
    seeds: List[int]
    metrics: Dict[str, MetricFn]

    def points(self) -> List[Dict[str, Any]]:
        """The cross-product of grid values, as config-override dicts."""
        if not self.grid:
            return [{}]
        keys = sorted(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[k] for k in keys))
        ]


@dataclass
class SweepPoint:
    """Results of all seeds at one grid point."""

    overrides: Dict[str, Any]
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def aggregate(self, metric: str) -> Aggregate:
        return aggregate(self.samples[metric])

    def label(self) -> str:
        if not self.overrides:
            return "(base)"
        return ", ".join(f"{k}={v}" for k, v in sorted(self.overrides.items()))


def enumerate_sweep(spec: SweepSpec, hash_events: bool = False) -> List[ScenarioSpec]:
    """Flatten the sweep into (grid point x seed) scenario specs, in
    the same order ``run_sweep`` consumes them."""
    base = dict(spec.base)
    topology = base.pop("topology", 1)
    duration = base.pop("duration", 10.0)
    scale = base.pop("scale", 0.2)
    scheme = base.pop("scheme", "tactic")
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            scheme=scheme,
            overrides={**base, **overrides},
            hash_events=hash_events,
        )
        for overrides in spec.points()
        for seed in spec.seeds
    ]


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    hash_events: bool = False,
) -> List[SweepPoint]:
    """Execute the full sweep: every grid point x every seed.

    Runs go through the :mod:`repro.exec` engine — ``jobs`` fans the
    (point x seed) grid over worker processes, ``cache_dir`` reuses
    prior results.  Metric extractors are applied in the parent process
    to the returned summaries, so they never cross a process boundary.
    """
    scenario_specs = enumerate_sweep(spec, hash_events=hash_events)
    summaries = run_specs(
        scenario_specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        figure="sweep",
    )
    per_point = len(spec.seeds)
    results: List[SweepPoint] = []
    for index, overrides in enumerate(spec.points()):
        point = SweepPoint(overrides=overrides)
        for metric in spec.metrics:
            point.samples[metric] = []
        for summary in summaries[index * per_point : (index + 1) * per_point]:
            for metric, fn in spec.metrics.items():
                point.samples[metric].append(fn(summary))
        results.append(point)
    return results


def render_sweep(points: List[SweepPoint], metrics: Sequence[str]) -> str:
    """ASCII table: one row per grid point, mean +/- CI per metric."""
    from repro.experiments.report import render_table

    rows = []
    for point in points:
        row: List[Any] = [point.label()]
        for metric in metrics:
            agg = point.aggregate(metric)
            row.append(f"{agg.mean:.4g} ± {agg.ci_halfwidth:.2g}")
        rows.append(row)
    return render_table(["point", *metrics], rows, title="Sweep results (95% CI)")
