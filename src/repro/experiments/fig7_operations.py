"""Fig. 7: BF lookups (L), insertions (I), signature verifications (V).

Paper findings (log-scale bars, edge vs. core routers, four
topologies):

- at edge routers the lookup (cheapest op) dominates and signature
  verification (most expensive) "happens the least (two orders of
  magnitude less)";
- edge insertions exceed edge verifications because edges also insert
  tags "validated by upstream routers";
- core routers show "a drastic decrement in computational overhead
  compared to edge routers" thanks to request aggregation and the
  F-flag collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table


@dataclass
class Fig7Row:
    topology: int
    edge_lookups: int
    edge_inserts: int
    edge_verifications: int
    core_lookups: int
    core_inserts: int
    core_verifications: int


def enumerate_fig7(
    topologies: Sequence[int] = (1,),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
) -> List[ScenarioSpec]:
    """One spec per requested topology."""
    return [
        ScenarioSpec.make(topology=topology, duration=duration, seed=seed, scale=scale)
        for topology in topologies
    ]


def reproduce_fig7(
    topologies: Sequence[int] = (1,),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Fig7Row]:
    """Regenerate Fig. 7's bars for the requested topologies."""
    specs = enumerate_fig7(topologies, duration, seed, scale)
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="fig7")
    rows: List[Fig7Row] = []
    for spec, summary in zip(specs, summaries):
        edge = summary.operation_counts(edge=True)
        core = summary.operation_counts(edge=False)
        rows.append(
            Fig7Row(
                topology=spec.topology,
                edge_lookups=edge.bf_lookups,
                edge_inserts=edge.bf_inserts,
                edge_verifications=edge.signature_verifications,
                core_lookups=core.bf_lookups,
                core_inserts=core.bf_inserts,
                core_verifications=core.signature_verifications,
            )
        )
    return rows


def render_fig7(rows: List[Fig7Row]) -> str:
    table_rows = [
        [
            f"Topo {r.topology}",
            r.edge_lookups,
            r.edge_inserts,
            r.edge_verifications,
            r.core_lookups,
            r.core_inserts,
            r.core_verifications,
        ]
        for r in rows
    ]
    return render_table(
        ["topology", "edge L", "edge I", "edge V", "core L", "core I", "core V"],
        table_rows,
        title="Fig. 7 — computation operations at edge and core routers",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_fig7(reproduce_fig7()))


if __name__ == "__main__":  # pragma: no cover
    main()
