"""Table V: Bloom-filter resets for two sizes and two FPPs.

Paper numbers (10 s tag expiry, Topology 1, 2000 s):

=============  ===========  ===========  ============
               500 items    5000 items   improvement
=============  ===========  ===========  ============
Edge, 1e-4        20840         1233        94.08%
Edge, 1e-2         9354          609        93.48%
Core, 1e-4          596            8        98.65%
Core, 1e-2          255            1        99.60%
=============  ===========  ===========  ============

"This result shows the impact of the Bloom filter size compared to its
FPP on reducing the routers' computational overhead": growing the
filter 10x removes >90% of resets, dwarfing what the FPP lever buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table

#: Paper cells for EXPERIMENTS.md comparison.
PAPER_TABLE5 = {
    ("edge", 1e-4): (20840, 1233, 0.9408),
    ("edge", 1e-2): (9354, 609, 0.9348),
    ("core", 1e-4): (596, 8, 0.9865),
    ("core", 1e-2): (255, 1, 0.9960),
}


@dataclass
class Table5Row:
    max_fpp: float
    small_capacity: int
    large_capacity: int
    edge_resets_small: int
    edge_resets_large: int
    core_resets_small: int
    core_resets_large: int

    def edge_improvement(self) -> float:
        if self.edge_resets_small == 0:
            return 0.0
        return 1.0 - self.edge_resets_large / self.edge_resets_small

    def core_improvement(self) -> float:
        if self.core_resets_small == 0:
            return 0.0
        return 1.0 - self.core_resets_large / self.core_resets_small


def enumerate_table5(
    topology: int = 1,
    fpps: Sequence[float] = (1e-4, 1e-2),
    small_capacity: int = 12,
    large_capacity: int = 120,
    duration: float = 60.0,
    seed: int = 1,
    scale: float = 0.3,
    tag_expiry: float = 10.0,
) -> List[ScenarioSpec]:
    """The flattened (FPP, capacity) grid as picklable scenario specs."""
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            overrides=dict(
                bf_capacity=capacity, bf_max_fpp=fpp, tag_expiry=tag_expiry
            ),
        )
        for fpp in fpps
        for capacity in (small_capacity, large_capacity)
    ]


def reproduce_table5(
    topology: int = 1,
    fpps: Sequence[float] = (1e-4, 1e-2),
    small_capacity: int = 12,
    large_capacity: int = 120,
    duration: float = 60.0,
    seed: int = 1,
    scale: float = 0.3,
    tag_expiry: float = 10.0,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Table5Row]:
    """Regenerate Table V.

    Default capacities are the paper's 500/5000 scaled by the same
    factor as the user population, so saturation dynamics match at
    CI-scale durations; paper scale is ``small_capacity=500,
    large_capacity=5000, duration=2000, scale=1.0``.
    """
    specs = enumerate_table5(
        topology, fpps, small_capacity, large_capacity,
        duration, seed, scale, tag_expiry,
    )
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="table5")
    by_key = {
        (dict(spec.overrides)["bf_max_fpp"], dict(spec.overrides)["bf_capacity"]): (
            summary.total_bf_resets(edge=True),
            summary.total_bf_resets(edge=False),
        )
        for spec, summary in zip(specs, summaries)
    }
    rows: List[Table5Row] = []
    for fpp in fpps:
        resets = {
            capacity: by_key[(fpp, capacity)]
            for capacity in (small_capacity, large_capacity)
        }
        rows.append(
            Table5Row(
                max_fpp=fpp,
                small_capacity=small_capacity,
                large_capacity=large_capacity,
                edge_resets_small=resets[small_capacity][0],
                edge_resets_large=resets[large_capacity][0],
                core_resets_small=resets[small_capacity][1],
                core_resets_large=resets[large_capacity][1],
            )
        )
    return rows


def render_table5(rows: List[Table5Row]) -> str:
    table_rows = [
        [
            r.max_fpp,
            f"{r.edge_resets_small} -> {r.edge_resets_large}",
            f"{r.edge_improvement():.2%}",
            f"{r.core_resets_small} -> {r.core_resets_large}",
            f"{r.core_improvement():.2%}",
        ]
        for r in rows
    ]
    return render_table(
        ["max FPP", "edge resets (small->large)", "edge improv.",
         "core resets (small->large)", "core improv."],
        table_rows,
        title="Table V — BF resets vs. filter size and FPP",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table5(reproduce_table5()))


if __name__ == "__main__":  # pragma: no cover
    main()
