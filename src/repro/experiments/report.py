"""Plain-text rendering of reproduced tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(['a', 'b'], [[1, 2.5], [30, 4]]))
    a   | b
    ----+----
    1   | 2.5
    30  | 4
    """
    formatted_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i] + 1) for i, h in enumerate(headers)).rstrip())
    lines.append("-+-".join("-" * (widths[i] + 1) for i in range(len(headers))))
    for row in formatted_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i] + 1) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, float]],
    label: str = "",
    max_points: int = 20,
) -> str:
    """Render an (x, y) series as aligned columns, downsampled evenly."""
    if not series:
        return f"{label}: (empty series)"
    step = max(1, len(series) // max_points)
    sampled = list(series[::step])
    if sampled[-1] != series[-1]:
        sampled.append(series[-1])
    lines = [label] if label else []
    for x, y in sampled:
        lines.append(f"  {x:>10.2f}  {y:.6g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A unicode sparkline, for quick visual shape checks in terminals."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = list(values[::step])
    low, high = min(sampled), max(sampled)
    span = (high - low) or 1.0
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))] for v in sampled)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
