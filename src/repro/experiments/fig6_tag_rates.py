"""Fig. 6: tag-request (Q) and tag-receive (R) rates.

Paper findings: the per-second rates "increase linearly with the size
of topology (and hence the number of clients)", and — the inset — on
Topology 1 "these rates can be reduced to one-fourth by increasing the
validity period from 10 to 100 seconds" (actually to roughly one-tenth
in steady state; the paper's one-fourth reflects its finite horizon and
initial registration burst, which shorter reproductions also see).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table


@dataclass
class Fig6Point:
    topology: int
    tag_expiry: float
    request_rate: float  # Q, tags/second over all clients
    receive_rate: float  # R
    num_clients: int


def enumerate_fig6(
    topologies: Sequence[int] = (1,),
    tag_expiries: Sequence[float] = (10.0, 100.0),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
) -> List[ScenarioSpec]:
    """The (topology, tag expiry) grid as picklable scenario specs."""
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            overrides=dict(tag_expiry=expiry),
        )
        for topology in topologies
        for expiry in tag_expiries
    ]


def reproduce_fig6(
    topologies: Sequence[int] = (1,),
    tag_expiries: Sequence[float] = (10.0, 100.0),
    duration: float = 30.0,
    seed: int = 1,
    scale: float = 0.3,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[Fig6Point]:
    """Regenerate Fig. 6's bars (main panel: sweep topologies at
    TE=10 s; inset: sweep tag expiry on one topology)."""
    specs = enumerate_fig6(topologies, tag_expiries, duration, seed, scale)
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="fig6")
    points: List[Fig6Point] = []
    for spec, summary in zip(specs, summaries):
        request_rate, receive_rate = summary.tag_rates()
        points.append(
            Fig6Point(
                topology=spec.topology,
                tag_expiry=dict(spec.overrides)["tag_expiry"],
                request_rate=request_rate,
                receive_rate=receive_rate,
                num_clients=summary.num_clients,
            )
        )
    return points


def render_fig6(points: List[Fig6Point]) -> str:
    rows = [
        [
            f"Topo {p.topology}",
            p.tag_expiry,
            p.num_clients,
            round(p.request_rate, 3),
            round(p.receive_rate, 3),
            round(p.request_rate / p.num_clients, 4) if p.num_clients else 0.0,
        ]
        for p in points
    ]
    return render_table(
        ["topology", "tag expiry (s)", "clients", "Q (req/s)", "R (recv/s)", "Q per client"],
        rows,
        title="Fig. 6 — tag-request (Q) and tag-receive (R) rates",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_fig6(reproduce_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
