"""Table II: comparison of TACTIC against the state of the art.

Table II in the paper is qualitative (communication overhead,
computation burden by party, infrastructure needs, revocation, and the
access-control enforcement point).  We reproduce it two ways:

1. the **feature matrix** itself (static, from the paper), and
2. a **measured comparison** running TACTIC and the three baseline
   scheme classes on the same topology/workload, quantifying the cells
   the simulator can observe: wasted attacker deliveries (client-side
   enforcement), origin load (provider enforcement), per-request router
   crypto (network enforcement without filters), and client latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ScenarioSpec, run_specs
from repro.experiments.report import render_table

#: The paper's qualitative rows (subset: the mechanism classes we model).
PAPER_FEATURE_MATRIX = [
    # mechanism, comm overhead, provider burden, network burden,
    # client burden, infra, revocation, enforcement
    ("TACTIC", "Low", "-", "Low", "-", "N/A", "Tunable time-based", "Network"),
    ("Misra et al. [3,7] (client-side)", "Moderate", "-", "-", "Moderate",
     "N/A", "Threshold based", "Client"),
    ("Chen et al. [8] (network, per-req crypto)", "Low", "High", "Low", "-",
     "N/A", "Daily re-encryption", "Provider"),
    ("Li et al. [16] (provider token auth)", "Low", "Moderate", "Low", "-",
     "N/A", "N/A", "Provider"),
]


@dataclass
class SchemeMeasurement:
    """Measured cells for one scheme on the common workload."""

    scheme: str
    client_ratio: float
    client_usable_ratio: float
    attacker_ratio: float
    attacker_bytes_wasted: int
    origin_chunks_served: int
    router_verifications: int
    router_verifications_per_kchunk: float
    mean_latency: float


def enumerate_table2(
    topology: int = 1,
    duration: float = 20.0,
    seed: int = 1,
    scale: float = 0.3,
    schemes: Sequence[str] = (
        "tactic", "no_bloom", "provider_auth", "client_side", "accconf"
    ),
) -> List[ScenarioSpec]:
    """One spec per scheme, all on the identical topology/workload."""
    return [
        ScenarioSpec.make(
            topology=topology,
            duration=duration,
            seed=seed,
            scale=scale,
            scheme=scheme,
        )
        for scheme in schemes
    ]


def reproduce_table2(
    topology: int = 1,
    duration: float = 20.0,
    seed: int = 1,
    scale: float = 0.3,
    schemes: Sequence[str] = (
        "tactic", "no_bloom", "provider_auth", "client_side", "accconf"
    ),
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> List[SchemeMeasurement]:
    """Run every scheme on the identical scenario and measure the
    quantitative shadows of Table II's qualitative cells."""
    specs = enumerate_table2(topology, duration, seed, scale, schemes)
    summaries = run_specs(specs, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                          figure="table2")
    measurements: List[SchemeMeasurement] = []
    for spec, summary in zip(specs, summaries):
        attacker_received = summary.total_received(attackers=True)
        delivered = summary.total_received(attackers=False) or 1
        router_verifs = (
            summary.operation_counts(edge=True).signature_verifications
            + summary.operation_counts(edge=False).signature_verifications
        )
        measurements.append(
            SchemeMeasurement(
                scheme=spec.scheme,
                client_ratio=summary.client_delivery_ratio(),
                client_usable_ratio=summary.usable_ratio(attackers=False),
                attacker_ratio=summary.attacker_delivery_ratio(),
                attacker_bytes_wasted=attacker_received * summary.chunk_size_bytes,
                origin_chunks_served=summary.origin_chunks_served,
                router_verifications=router_verifs,
                router_verifications_per_kchunk=router_verifs / delivered * 1000.0,
                mean_latency=summary.mean_latency() or 0.0,
            )
        )
    return measurements


def render_feature_matrix() -> str:
    return render_table(
        ["mechanism", "comm", "provider", "network", "client",
         "infra", "revocation", "enforcement"],
        PAPER_FEATURE_MATRIX,
        title="Table II (paper, qualitative) — mechanism feature matrix",
    )


def render_table2(measurements: List[SchemeMeasurement]) -> str:
    rows = [
        [
            m.scheme,
            round(m.client_ratio, 4),
            round(m.client_usable_ratio, 4),
            round(m.attacker_ratio, 4),
            m.attacker_bytes_wasted,
            m.origin_chunks_served,
            m.router_verifications,
            round(m.router_verifications_per_kchunk, 2),
            round(m.mean_latency * 1000.0, 3),
        ]
        for m in measurements
    ]
    measured = render_table(
        [
            "scheme",
            "client recv",
            "client usable",
            "attacker recv",
            "attacker bytes",
            "origin chunks",
            "router verifs",
            "verifs/1k chunks",
            "latency (ms)",
        ],
        rows,
        title="Table II (measured) — schemes on the common workload",
    )
    return render_feature_matrix() + "\n\n" + measured


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table2(reproduce_table2()))


if __name__ == "__main__":  # pragma: no cover
    main()
