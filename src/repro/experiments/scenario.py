"""Scenario descriptions: topology + configuration + scheme.

A :class:`Scenario` is everything needed to run one simulation point:
the topology plan (usually a Table III preset), the
:class:`~repro.core.config.TacticConfig`, the access-control scheme
under test (TACTIC or one of the baselines), and the attacker mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.attacker import PAPER_MODES, AttackerMode
from repro.core.config import TacticConfig
from repro.topology.presets import paper_topology_plan
from repro.topology.scale_free import TopologyPlan

#: Known schemes; see repro.baselines for the non-TACTIC ones.
SCHEMES = ("tactic", "no_bloom", "client_side", "provider_auth", "accconf")


@dataclass
class Scenario:
    """One simulation point."""

    plan: TopologyPlan
    config: TacticConfig = field(default_factory=TacticConfig)
    scheme: str = "tactic"
    attacker_modes: Tuple[AttackerMode, ...] = PAPER_MODES
    label: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")
        self.config.validate()

    def with_config(self, **overrides) -> "Scenario":
        return replace(self, config=self.config.with_(**overrides))

    @staticmethod
    def paper_topology(
        index: int,
        duration: float = 50.0,
        seed: int = 1,
        scale: float = 1.0,
        config: Optional[TacticConfig] = None,
        scheme: str = "tactic",
        attacker_modes: Tuple[AttackerMode, ...] = PAPER_MODES,
    ) -> "Scenario":
        """A scenario over paper topology ``index`` (Table III).

        ``scale < 1`` shrinks entity counts proportionally for fast
        runs; ``duration`` defaults well below the paper's 2000 s for
        the same reason (both are recorded in results).
        """
        config = (config or TacticConfig()).with_(duration=duration, seed=seed)
        plan = paper_topology_plan(index, seed=seed, scale=scale)
        return Scenario(
            plan=plan,
            config=config,
            scheme=scheme,
            attacker_modes=attacker_modes,
            label=f"topo{index}" + (f"@{scale}" if scale != 1.0 else ""),
        )
