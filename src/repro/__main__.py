"""Command-line entry point: regenerate paper artifacts from the shell.

Usage::

    python -m repro list
    python -m repro table4 --topologies 1 2 --duration 20 --scale 0.25
    python -m repro fig8 --duration 40 --scale 0.25
    python -m repro all --duration 15 --scale 0.2

Every subcommand maps to one ``repro.experiments`` reproduction module
and prints the same rendered rows/series the benchmarks publish.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List

from repro.experiments.fig5_latency import render_fig5, reproduce_fig5
from repro.experiments.fig6_tag_rates import render_fig6, reproduce_fig6
from repro.experiments.fig7_operations import render_fig7, reproduce_fig7
from repro.experiments.fig8_bf_reset import render_fig8, reproduce_fig8
from repro.experiments.table2_comparison import render_table2, reproduce_table2
from repro.experiments.table4_delivery import render_table4, reproduce_table4
from repro.experiments.table5_bf_resets import render_table5, reproduce_table5
from repro.obs.export import TRACE_FORMATS


def _exec_kwargs(args) -> Dict:
    """The repro.exec engine knobs every reproduction accepts."""
    return dict(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _run_fig5(args) -> str:
    return render_fig5(
        reproduce_fig5(
            topologies=tuple(args.topologies),
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_fig6(args) -> str:
    return render_fig6(
        reproduce_fig6(
            topologies=tuple(args.topologies),
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_fig7(args) -> str:
    return render_fig7(
        reproduce_fig7(
            topologies=tuple(args.topologies),
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_fig8(args) -> str:
    return render_fig8(
        reproduce_fig8(
            topology=args.topologies[0],
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_table2(args) -> str:
    return render_table2(
        reproduce_table2(
            topology=args.topologies[0],
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_table4(args) -> str:
    return render_table4(
        reproduce_table4(
            topologies=tuple(args.topologies),
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


def _run_table5(args) -> str:
    return render_table5(
        reproduce_table5(
            topology=args.topologies[0],
            duration=args.duration,
            seed=args.seed,
            scale=args.scale,
            **_exec_kwargs(args),
        )
    )


ARTIFACTS: Dict[str, Callable] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "table2": _run_table2,
    "table4": _run_table4,
    "table5": _run_table5,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the TACTIC paper (ICDCS 2018).",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="which paper artifact to regenerate ('all' runs every one, "
        "'list' shows the mapping)",
    )
    parser.add_argument(
        "--topologies", type=int, nargs="+", default=[1],
        help="Table III topology indices (default: 1)",
    )
    parser.add_argument(
        "--duration", type=float, default=20.0,
        help="simulated seconds per point (paper: 2000)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="entity-count scale factor (paper: 1.0)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    execution = parser.add_argument_group(
        "execution", "parallel fan-out and run caching (see "
        "docs/PERFORMANCE.md)"
    )
    execution.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for scenario fan-out (default: REPRO_JOBS "
        "or 1 = serial in-process)",
    )
    execution.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed run cache directory (default: "
        "REPRO_CACHE_DIR or caching off)",
    )
    execution.add_argument(
        "--no-cache", action="store_true",
        help="ignore the run cache entirely, even if --cache-dir or "
        "REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="arm the SimSan runtime invariant checks on every run "
        "(equivalent to REPRO_SIMSAN=1; see docs/STATIC_ANALYSIS.md)",
    )
    telemetry = parser.add_argument_group(
        "telemetry", "observability outputs (all off by default; see "
        "docs/OBSERVABILITY.md)"
    )
    telemetry.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write per-run labeled metrics as one JSON document",
    )
    telemetry.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the packet/span event trace as JSON lines",
    )
    telemetry.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace file format: 'jsonl' (archival lines) or 'chrome' "
        "(a trace_event document for chrome://tracing / Perfetto)",
    )
    telemetry.add_argument(
        "--sample-interval", type=float, default=None, metavar="SECONDS",
        help="sample PIT/CS/BF/link/scheduler state every N virtual seconds",
    )
    telemetry.add_argument(
        "--profile", action="store_true",
        help="wall-clock the event loop and print a per-category report",
    )
    telemetry.add_argument(
        "--heartbeat", type=float, default=0.0, metavar="SECONDS",
        help="with --profile: print a liveness pulse every N wall seconds",
    )
    telemetry.add_argument(
        "--perf", action="store_true",
        help="attach the hot-path performance observatory: per-phase "
        "cost accounting (heap/dispatch/PIT/CS/BF/link/crypto) printed "
        "per run and merged fleet-wide (docs/PERFORMANCE.md)",
    )
    telemetry.add_argument(
        "--flame-out", metavar="PATH", default=None,
        help="statistically sample the run and write collapsed stacks "
        "(Brendan Gregg format) for flamegraph.pl / speedscope",
    )
    telemetry.add_argument(
        "--flame-interval", type=float, default=0.005, metavar="SECONDS",
        help="stack-sampling period for --flame-out (default: 0.005)",
    )
    fleet = parser.add_argument_group(
        "fleet observability", "engine-level progress, merged metrics, and "
        "run history (docs/OBSERVABILITY.md, \"Fleet observability\")"
    )
    fleet.add_argument(
        "--progress", action="store_true",
        help="live fleet status line on stderr while specs execute "
        "(equivalent to REPRO_PROGRESS=1)",
    )
    fleet.add_argument(
        "--engine-events", metavar="PATH", default=None,
        help="append fleet.* engine events as JSON lines (equivalent to "
        "REPRO_ENGINE_EVENTS)",
    )
    fleet.add_argument(
        "--fleet-telemetry", action="store_true",
        help="force the worker telemetry round-trip on even without other "
        "telemetry flags (equivalent to REPRO_FLEET_TELEMETRY=1)",
    )
    fleet.add_argument(
        "--fleet-metrics-out", metavar="PATH", default=None,
        help="write the merged fleet-wide metrics snapshot as JSON "
        "(equivalent to REPRO_FLEET_METRICS)",
    )
    fleet.add_argument(
        "--history-dir", metavar="DIR", default=None,
        help="append per-figure run-history entries for "
        "'python -m repro.obs.history diff' (equivalent to "
        "REPRO_HISTORY_DIR)",
    )
    fleet.add_argument(
        "--fleetperf", action="store_true",
        help="attach the fleet scheduling observatory: per-worker "
        "lifecycle phases and the pool timeline, reported via "
        "'python -m repro.obs.fleetperf report' (equivalent to "
        "REPRO_FLEETPERF=1)",
    )
    fleet.add_argument(
        "--fleet-trace", metavar="PATH", default=None,
        help="write the pool timeline as a Chrome trace (one lane per "
        "worker, spec slices + occupancy counter); implies --fleetperf "
        "(equivalent to REPRO_FLEET_TRACE)",
    )
    fleet.add_argument(
        "--statescope", action="store_true",
        help="attach the state-footprint observatory to every run: "
        "periodic PIT/CS/BF/FIB/heap state accounting, leak detection, "
        "and closed-form conformance checks, reported via "
        "'python -m repro.obs.statescope report' (equivalent to "
        "REPRO_STATESCOPE=1)",
    )
    fleet.add_argument(
        "--statescope-out", metavar="PATH", default=None,
        help="write the fleet-merged statescope conformance report as "
        "JSON; implies --statescope (equivalent to REPRO_STATESCOPE_OUT)",
    )
    audit = parser.add_argument_group(
        "decision auditing", "access-control decision records, the "
        "misauthorization oracle, and the flight recorder "
        "(docs/OBSERVABILITY.md, \"Decision auditing & flight recorder\")"
    )
    audit.add_argument(
        "--audit", action="store_true",
        help="attach the decision audit to every run without writing a "
        "report file (equivalent to REPRO_AUDIT=1)",
    )
    audit.add_argument(
        "--audit-out", metavar="PATH", default=None,
        help="write the fleet-merged audit report (summary + binomial-CI "
        "check) as JSON; implies --audit (equivalent to REPRO_AUDIT_OUT)",
    )
    audit.add_argument(
        "--flightrec", metavar="DIR", default=None,
        help="arm the flight recorder; post-mortem bundles land in DIR "
        "(equivalent to REPRO_FLIGHTREC)",
    )
    audit.add_argument(
        "--flightrec-size", type=int, default=None, metavar="N",
        help="flight-recorder ring capacity in records (default: 512; "
        "equivalent to REPRO_FLIGHTREC_SIZE)",
    )
    audit.add_argument(
        "--flightrec-dump", action="store_true",
        help="force a post-mortem bundle at the end of every run, even "
        "without a trigger (equivalent to REPRO_FLIGHTREC_DUMP=1)",
    )
    return parser


def _telemetry_config(args) -> "TelemetryConfig | None":
    if not (args.metrics_out or args.trace_out or args.sample_interval
            or args.profile or args.perf or args.flame_out):
        return None
    from repro.obs.session import TelemetryConfig

    return TelemetryConfig(
        metrics_path=args.metrics_out,
        trace_path=args.trace_out,
        trace_format=args.trace_format,
        sample_interval=args.sample_interval,
        profile=args.profile,
        heartbeat=args.heartbeat,
        perf=args.perf,
        flame_path=args.flame_out,
        flame_interval=args.flame_interval,
    )


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sanitize:
        # The runner's maybe_install() reads the env var, so the flag
        # arms every run this process makes without threading a
        # parameter through each artifact function.
        os.environ["REPRO_SIMSAN"] = "1"
    # The fleet flags ride the same env-forwarding pattern: the engine
    # reads these at construction, so every ExperimentEngine any driver
    # builds this process picks them up without new parameters.
    if args.progress:
        os.environ["REPRO_PROGRESS"] = "1"
    if args.fleet_telemetry:
        os.environ["REPRO_FLEET_TELEMETRY"] = "1"
    if args.engine_events:
        os.environ["REPRO_ENGINE_EVENTS"] = args.engine_events
    if args.fleet_metrics_out:
        os.environ["REPRO_FLEET_METRICS"] = args.fleet_metrics_out
    if args.history_dir:
        os.environ["REPRO_HISTORY_DIR"] = args.history_dir
    if args.fleetperf:
        os.environ["REPRO_FLEETPERF"] = "1"
    if args.fleet_trace:
        os.environ["REPRO_FLEET_TRACE"] = args.fleet_trace
    if args.statescope:
        os.environ["REPRO_STATESCOPE"] = "1"
    if args.statescope_out:
        os.environ["REPRO_STATESCOPE_OUT"] = args.statescope_out
    # Decision auditing and the flight recorder follow suit: the runner
    # and engine read these, and spawned workers inherit them.
    if args.audit:
        os.environ["REPRO_AUDIT"] = "1"
    if args.audit_out:
        os.environ["REPRO_AUDIT_OUT"] = args.audit_out
    if args.flightrec:
        os.environ["REPRO_FLIGHTREC"] = args.flightrec
    if args.flightrec_size is not None:
        os.environ["REPRO_FLIGHTREC_SIZE"] = str(args.flightrec_size)
    if args.flightrec_dump:
        os.environ["REPRO_FLIGHTREC_DUMP"] = "1"
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(f"{name:8s} -> repro.experiments.{name}_*")
        return 0
    targets = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    config = _telemetry_config(args)
    if config is None:
        for name in targets:
            print(ARTIFACTS[name](args))
            print()
        return 0
    from repro.obs.session import set_default_telemetry

    set_default_telemetry(config)
    try:
        for name in targets:
            print(ARTIFACTS[name](args))
            print()
    finally:
        set_default_telemetry(None)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
