"""The attacker population from the threat model (Section 3.C).

Each :class:`AttackerMode` realizes one threat:

- ``NO_TAG`` -- (a) "a malicious user, requesting a private content
  without possessing a tag",
- ``FAKE_TAG`` -- (b) "an attacker, requesting a content using a fake
  tag" (well-formed fields, fabricated signature),
- ``EXPIRED_TAG`` -- (c) "a client, trying to obtain a content with an
  expired tag" (a once-legitimate client replaying its stale tag),
- ``LOW_ACCESS_LEVEL`` -- (d) "a client, possessing a tag with
  insufficient access levels" (legitimately registered at level 0,
  requesting higher-level content),
- ``SHARED_TAG`` -- (e) "a client, sharing his tag with an unauthorized
  user" at a *different* location (caught by the access-path binding
  when it is enabled; succeeds when it is disabled, which is why the
  paper's own attacker set — which predates the access-path
  implementation — excludes it).

Attackers inherit the full Zipf-window machinery ("attackers are also
equipped with outstanding request windows"), so their request rate is
throttled exactly as the paper describes: stalled slots free only at
the 1-second request expiry.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.core.client import Client
from repro.core.config import TacticConfig
from repro.core.metrics import UserStats
from repro.core.tag import Tag
from repro.ndn.packets import Data
from repro.sim.engine import Simulator
from repro.workload.catalog import Catalog


class AttackerMode(enum.Enum):
    NO_TAG = "no-tag"
    FAKE_TAG = "fake-tag"
    EXPIRED_TAG = "expired-tag"
    LOW_ACCESS_LEVEL = "low-access-level"
    SHARED_TAG = "shared-tag"


#: The attacker mix matching the paper's implemented threat set (the
#: access-path threat (e) was future work there).
PAPER_MODES = (
    AttackerMode.NO_TAG,
    AttackerMode.FAKE_TAG,
    AttackerMode.EXPIRED_TAG,
    AttackerMode.LOW_ACCESS_LEVEL,
)


class Attacker(Client):
    """An unauthorized user attempting content retrieval."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        catalog: Catalog,
        stats: UserStats,
        mode: AttackerMode,
        victim: Optional[Client] = None,
        provider_key_locators: Optional[dict] = None,
    ) -> None:
        super().__init__(
            sim,
            node_id,
            config,
            catalog,
            stats,
            access_level=0,
        )
        self.mode = mode
        self.victim = victim
        self.provider_key_locators = provider_key_locators or {}
        #: Stale tags captured before expiry (EXPIRED_TAG mode); the
        #: runner seeds these via Provider.issue_tag_direct.
        self.stale_tags: dict = {}
        self._fake_tags: dict = {}
        if mode is AttackerMode.SHARED_TAG and victim is None:
            raise ValueError("SHARED_TAG attacker needs a victim client")

    # ------------------------------------------------------------------
    # Tag acquisition per mode
    # ------------------------------------------------------------------
    def _acquire_tag(self, provider_id: str) -> Tuple[Optional[Tag], bool]:
        if self.mode is AttackerMode.NO_TAG:
            return None, True

        if self.mode is AttackerMode.FAKE_TAG:
            return self._fake_tag(provider_id), True

        if self.mode is AttackerMode.EXPIRED_TAG:
            stale = self.stale_tags.get(provider_id)
            if stale is None:
                # Nothing captured for this provider; behave like NO_TAG.
                return None, True
            return stale, True

        if self.mode is AttackerMode.SHARED_TAG:
            shared = self.victim.tags.get(provider_id)
            if shared is not None and not shared.is_expired(self.sim.now):
                return shared, True
            # Victim holds no usable tag yet; retry after a beat.
            self._schedule_retry_if_idle(provider_id)
            return None, False

        # LOW_ACCESS_LEVEL: legitimately enrolled (at level 0) — use the
        # normal registration machinery.
        return super()._acquire_tag(provider_id)

    def _fake_tag(self, provider_id: str) -> Tag:
        """A well-formed tag with a fabricated signature.

        Fields are chosen to defeat every cheap check: the real provider
        key locator (passes the prefix and key-locator comparisons), a
        high access level, the attacker's true access path (passes the
        location binding), and a far-future expiry.  Only signature
        verification — or a Bloom-filter false positive skipping it —
        stands between this tag and the content.
        """
        tag = self._fake_tags.get(provider_id)
        if tag is not None and not tag.is_expired(self.sim.now):
            return tag
        locator = self.provider_key_locators.get(provider_id, f"/{provider_id}/KEY/pub")
        tag = Tag(
            provider_key_locator=locator,
            client_key_locator=f"/{self.node_id}/KEY/pub",
            access_level=10,
            access_path=self.expected_access_path,
            expiry=self.sim.now + 3600.0,
            signature=self.rng.getrandbits(256).to_bytes(32, "big"),
        )
        self._fake_tags[provider_id] = tag
        return tag

    #: Set by the runner to the attacker's true AP-path hash so fake and
    #: shared tags are tested against the strongest adversary.
    expected_access_path: bytes = b"\x00" * 32

    def can_consume(self, data: Data) -> bool:
        """Attackers never hold decryption material: even content that
        reaches them (e.g. under client-side schemes, or via a Bloom
        false positive) is ciphertext they cannot use."""
        return False
