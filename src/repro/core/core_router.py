"""The core router: content router and intermediate router in one node.

The paper partitions core routers *per content*: "core routers are
either content routers, if the content has been cached, or intermediate
routers, otherwise" (Section 3.A).  The same physical node therefore
plays both roles — Protocol 3 when its content store can satisfy the
arriving Interest, Protocol 4 when it cannot — and flips roles for a
given name the moment content it forwards gets cached.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TacticConfig
from repro.core.content_router import ContentRouterMixin
from repro.core.intermediate_router import IntermediateRouterMixin
from repro.core.metrics import MetricsCollector
from repro.core.router_base import TacticRouterBase
from repro.crypto.pki import CertificateStore
from repro.ndn.link import Face
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Simulator


class CoreRouter(ContentRouterMixin, IntermediateRouterMixin, TacticRouterBase):
    """An rC in the paper's notation (rcC on cache hit, riC on miss)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        cert_store: CertificateStore,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        super().__init__(sim, node_id, config, cert_store, metrics, is_edge=False)

    def on_interest(self, interest: Interest, in_face: Face) -> None:
        self.counters.note_request()
        if interest.is_registration():
            # Registration rides plain NDN forwarding to the provider.
            self.aggregate_or_forward(interest, in_face)
            return
        cached = self.cs.lookup(interest.name, now=self.sim.now)
        if cached is not None:
            self.serve_content(interest, cached, in_face)  # Protocol 3
        else:
            self.aggregate_or_forward(interest, in_face)  # Protocol 4

    def on_data(self, data: Data, in_face: Face) -> None:
        self.distribute_content(data, in_face)  # Protocol 4, content side
