"""Protocol 3: the content-router procedure.

A *content router* is any core router that can satisfy a request from
its content store.  Given the cached Data and the arriving Interest:

- ``F == 0`` and the tag is in the Bloom filter -> serve, echo ``F = 0``
  (lines 1-3),
- ``F == 0`` and the tag is absent -> verify the signature; on success
  insert the tag and serve with ``F = 0`` ("reminding rE that the tag
  is not available in its Bloom filter"), on failure attach a NACK
  (lines 4-10, 17-19),
- ``F != 0`` -> re-validate only with probability ``F`` (the edge
  filter's false-positive probability), echoing the received ``F`` so
  the edge does not re-insert (lines 11-16).

"rcC returns the content D even if Tu is invalid.  This is to satisfy
other possible valid aggregated requests in the downstream routers" —
hence the *attached* NACK rather than a bare rejection.

Implemented as a mixin so :class:`~repro.core.core_router.CoreRouter`
(which flips between content and intermediate roles per request) and
:class:`~repro.core.provider.Provider` (the origin, which behaves like
a content router for its own catalog) share one code path.
"""

from __future__ import annotations

from repro.core.precheck import content_precheck
from repro.ndn.link import Face
from repro.ndn.packets import AttachedNack, Data, Interest, NackReason


class ContentRouterMixin:
    """Protocol 3, shared by core routers and the provider origin.

    Host classes must provide the :class:`~repro.core.router_base.
    TacticRouterBase` interface (``bf_lookup``, ``bf_insert``,
    ``verify_tag_signature``, ``compute_delay``, ``counters``, ``rng``,
    ``send``).
    """

    def serve_content(self, interest: Interest, data: Data, in_face: Face) -> None:
        """Answer ``interest`` with cached/origin ``data`` per Protocol 3."""
        tag = interest.tag
        data = data.copy()
        data.tag = tag
        data.span_id = interest.nonce
        self.trace_span_serve(interest)
        delay = self.compute_delay("precheck")

        # Public content: "return the requested content without tag
        # verification" (ALD is NULL).
        if data.access_level is None:
            data.flag_f = interest.flag_f
            self.send(in_face, data, delay)
            return

        # Protocol 1, content-router half (AL and key-locator checks).
        reason = content_precheck(tag, data)
        if reason is not None:
            self.counters.precheck_drops += 1
            self._serve_with_nack(data, interest, in_face, reason, delay)
            return

        if interest.flag_f == 0.0:
            found, lookup_delay = self.bf_lookup(tag)
            delay += lookup_delay
            if found:
                data.flag_f = 0.0
                self.send(in_face, data, delay)
                return
            valid, verify_delay = self.verify_tag_signature(tag)
            delay += verify_delay
            if valid:
                delay += self.bf_insert(tag)
                data.flag_f = 0.0
                self.send(in_face, data, delay)
            else:
                self._serve_with_nack(
                    data, interest, in_face, NackReason.INVALID_SIGNATURE, delay
                )
            return

        # F != 0: the edge vouched; re-validate with probability F.
        data.flag_f = interest.flag_f  # copy the received F (line 13)
        fired = self.rng.random() < interest.flag_f
        if self.audit is not None:
            self.audit.note_f_recheck(self, tag, fired, interest.flag_f)
        if fired:
            valid, verify_delay = self.verify_tag_signature(tag)
            delay += verify_delay
            if not valid:
                self._serve_with_nack(
                    data, interest, in_face, NackReason.INVALID_SIGNATURE, delay
                )
                return
        self.send(in_face, data, delay)

    def _serve_with_nack(
        self,
        data: Data,
        interest: Interest,
        in_face: Face,
        reason: NackReason,
        delay: float,
    ) -> None:
        """Return ``<D, Tu, NACK>``: content still flows downstream.

        Under the drop-only ablation (``nack_carries_content=False``)
        nothing is returned at all; downstream PIT entries — including
        valid aggregated requesters — starve until their lifetimes
        expire.
        """
        self.counters.nacks_issued += 1
        tag_key = interest.tag.cache_key() if interest.tag is not None else b""
        if self.audit is not None:
            self.audit.note_nack(self, tag_key, reason)
        if not self.config.nack_carries_content:
            return
        data.nack = AttachedNack(tag_key=tag_key, reason=reason)
        self.send(in_face, data, delay)
