"""Shared machinery for TACTIC routers.

Every TACTIC router owns a Bloom filter of validated tags, a handle to
the ISP's certificate store, and operation counters.  The helpers here
wrap the three computation-based events the paper models — BF lookup,
BF insertion, signature verification — so each call counts the
operation, performs it, and returns the sampled latency to add to the
packet's processing delay (the authors' ns-3 technique, Section 8.B).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector, OpCounters
from repro.core.tag import Tag
from repro.crypto.pki import CertificateStore
from repro.filters.bloom import BloomFilter
from repro.ndn.node import Node
from repro.sim.engine import Simulator


class TacticRouterBase(Node):
    """Base class for edge and core TACTIC routers.

    Parameters
    ----------
    sim, node_id:
        As for :class:`~repro.ndn.node.Node`.
    config:
        The run's :class:`~repro.core.config.TacticConfig`.
    cert_store:
        The ISP-wide PKI store used to resolve provider key locators.
    metrics:
        Run-wide collector; the router registers its counters with it.
    is_edge:
        Whether this router plays the edge role (affects metric
        bucketing and content-store capacity).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        cert_store: CertificateStore,
        metrics: Optional[MetricsCollector] = None,
        is_edge: bool = False,
    ) -> None:
        cs_capacity = config.edge_cs_capacity if is_edge else config.cs_capacity
        super().__init__(
            sim,
            node_id,
            cs_capacity=cs_capacity,
            pit_lifetime=config.pit_lifetime,
            cost_model=config.cost_model,
            cs_policy=config.cs_policy,
            pit_capacity=config.pit_capacity,
        )
        self.config = config
        self.cert_store = cert_store
        self.is_edge = is_edge
        self.bloom = BloomFilter(
            capacity=config.bf_capacity,
            max_fpp=config.bf_max_fpp,
            num_hashes=config.bf_num_hashes,
            sizing_fpp=config.bf_sizing_fpp,
        )
        self.counters = OpCounters()
        #: Decision-audit hook (:class:`repro.obs.audit.DecisionAudit`);
        #: a single attribute check keeps the off state zero-cost, and
        #: the hooks never touch the RNG, so audited runs stay
        #: bit-identical to unaudited ones.
        self.audit = None
        #: Blacklisted tag cache-keys (explicit-revocation extension).
        #: Checked before the filter and before signature verification,
        #: so a revoked-but-unexpired tag can never be re-admitted.
        self.revoked_tag_keys = set()
        if metrics is not None:
            metrics.register_router(node_id, self.counters, is_edge=is_edge)

    # ------------------------------------------------------------------
    # Computation-based events (counted + latency-sampled)
    # ------------------------------------------------------------------
    def bf_lookup(self, tag: Tag) -> Tuple[bool, float]:
        """Bloom-filter membership test for a tag.

        With Bloom filters disabled (the no-BF ablation baseline) the
        lookup reports a miss at zero cost, which forces the signature
        path on every request — the behaviour of router-enforced schemes
        without TACTIC's filter caching.
        """
        key = tag.cache_key()
        if self.revoked_tag_keys and key in self.revoked_tag_keys:
            if self.audit is not None:
                self.audit.record_decision(
                    "revoked", self, tag_key=key, outcome="bf_lookup"
                )
            return False, 0.0
        if not self.config.use_bloom_filters:
            return False, 0.0
        self.counters.bf_lookups += 1
        found = self.bloom.contains(key)
        delay = self.compute_delay("bf_lookup")
        if self.audit is not None:
            self.audit.note_bf_lookup(self, key, found, delay)
        return found, delay

    def bf_insert(self, tag: Tag) -> float:
        """Insert a validated tag; handles the saturation auto-reset."""
        if not self.config.use_bloom_filters:
            return 0.0
        self.counters.bf_inserts += 1
        key = tag.cache_key()
        reset = self.bloom.insert_with_auto_reset(key)
        if reset:
            self.counters.note_reset()
        if self.audit is not None:
            self.audit.note_bf_insert(self, key, reset)
        return self.compute_delay("bf_insert")

    def revoke_tag_key(self, key: bytes) -> None:
        """Blacklist one tag on this node (explicit-revocation hook)."""
        self.revoked_tag_keys.add(key)
        if self.audit is not None:
            self.audit.note_revoked(self, key)

    def verify_tag_signature(self, tag: Tag) -> Tuple[bool, float]:
        """Full signature verification through the PKI."""
        if self.revoked_tag_keys and tag.cache_key() in self.revoked_tag_keys:
            # Cryptographically valid but administratively dead.
            if self.audit is not None:
                self.audit.record_decision(
                    "revoked", self, tag_key=tag.cache_key(), outcome="sig_verify"
                )
            return False, 0.0
        self.counters.signature_verifications += 1
        public_key = self.cert_store.try_get_public_key(
            tag.provider_key_locator, now=self.sim.now
        )
        valid = public_key is not None and tag.verify_signature(public_key)
        delay = self.compute_delay("signature_verify")
        if self.audit is not None:
            self.audit.note_sig_verify(self, tag, valid, delay)
        return valid, delay

    def current_flag_value(self) -> float:
        """The F value advertised for a BF hit: this filter's FPP.

        "The value of F is set to zero if the received tag is not
        available in rE's BF and set to the false positive rate of rE's
        BF otherwise."  We use the live FPP estimate, which grows as the
        filter fills — exactly the coupling the paper exploits ("if the
        rE's Bloom filter false positive increases, then the probability
        of a content router validating the tag increases").
        """
        return self.bloom.current_fpp()
