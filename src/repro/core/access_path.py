"""The access-path location binding (Section 4.A).

"Client u's access path (APu) is the XOR of the hashed identity of all
network entities between u and rE (excluding rE).  Each intermediate
entity, between u and her corresponding rE, adds its identity to the
rolling hash."

In our topologies the entities between a user and its edge router are
the access point(s) it traverses; each :class:`~repro.ndn.node.AccessPoint`
folds its identity hash into the Interest's ``observed_access_path`` in
flight.  The provider copies the observed value into the tag at
registration; the edge router then compares tag vs. observation on
every request, pinning the tag to the location it was issued from.

The paper notes its own simulations left this feature unimplemented
("we left the implementation of the access path feature as part of our
future work"); it is fully implemented here and can be disabled via
:attr:`repro.core.config.TacticConfig.enable_access_path` for
paper-faithful runs.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.hashing import rolling_xor_hash

ZERO_PATH = b"\x00" * 32


def expected_access_path(entity_ids: Iterable[str]) -> bytes:
    """Compute the APu for a user whose path to its edge router
    traverses ``entity_ids`` (typically a single access point)."""
    return rolling_xor_hash(entity_ids)


def paths_match(tag_path: bytes, observed_path: bytes) -> bool:
    """The edge router's comparison (Protocol 2, line 1)."""
    return tag_path == observed_path
