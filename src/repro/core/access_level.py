"""The hierarchical access-level model (Section 5).

The paper: "We envision a hierarchical access level model in which
tags with higher access levels can retrieve content with lower access
levels (ALD <= ALTu)" and "We set the ALD (of a publicly available
data) to NULL, which allows an rcC to return the requested content
without tag verification."

Levels are small non-negative integers; ``None`` (aliased
:data:`PUBLIC`) marks public content.
"""

from __future__ import annotations

from typing import Optional

#: Access level of publicly available content: no tag needed.
PUBLIC: Optional[int] = None


def satisfies(tag_level: Optional[int], content_level: Optional[int]) -> bool:
    """True when a tag at ``tag_level`` may retrieve ``content_level`` data.

    Public content (``content_level is None``) is retrievable by anyone,
    including requesters with no tag (``tag_level is None``).  Private
    content requires a tag whose level dominates the content's
    (``ALD <= ALTu``).

    >>> satisfies(2, 1)
    True
    >>> satisfies(1, 2)
    False
    >>> satisfies(None, None)
    True
    >>> satisfies(None, 1)
    False
    """
    if content_level is None:
        return True
    if tag_level is None:
        return False
    return content_level <= tag_level


def validate_level(level: Optional[int]) -> Optional[int]:
    """Normalize and validate a level value (None or int >= 0)."""
    if level is None:
        return None
    level = int(level)
    if level < 0:
        raise ValueError(f"access level must be >= 0, got {level}")
    return level
