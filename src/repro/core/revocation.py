"""Revocation: tag expiry as the membership-control mechanism.

"TACTIC leverages tag expiration as the mean to revoke clients'
memberships ... A shorter expiry time mandates clients to request
fresh tags more frequently, which allows a more fine-grained and
flexible client revocation" (Section 5).  The trade-off — revocation
granularity vs. router workload — is what Fig. 6 and Fig. 8 sweep.

:class:`ExpiryRevocation` packages the policy: how long tags live, and
the worst-case window during which a freshly revoked client can still
use its last tag.  Directory-level revocation (refusing re-registration)
lives on :class:`~repro.core.provider.ClientDirectory`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.provider import Provider


@dataclass(frozen=True)
class ExpiryRevocation:
    """The expiry-based revocation policy."""

    tag_lifetime: float

    def __post_init__(self) -> None:
        if self.tag_lifetime <= 0:
            raise ValueError("tag_lifetime must be positive")

    def worst_case_exposure(self) -> float:
        """Longest time a just-revoked client can keep retrieving
        content: the full lifetime of the tag it was issued the instant
        before revocation."""
        return self.tag_lifetime

    def expected_registrations_per_second(self, num_clients: int) -> float:
        """Steady-state tag-request rate the provider population absorbs
        (one refresh per client per lifetime) — the paper's Fig. 6
        quantity, which "can be reduced to one-fourth by increasing the
        validity period from 10 to 100 seconds"."""
        return num_clients / self.tag_lifetime

    def revoke(self, provider: Provider, user_id: str) -> float:
        """Revoke ``user_id`` at ``provider``; returns the virtual time
        by which their access is guaranteed dead (now + exposure)."""
        provider.directory.revoke(user_id)
        return provider.sim.now + self.worst_case_exposure()
