"""Protocol 2: the edge-router procedure.

On Interest arrival an edge router rE:

1. compares the tag's access path with the one observed in the request,
   NACKing the client on mismatch (line 1-2),
2. runs the Protocol 1 pre-check (provider prefix vs. content name,
   tag expiry),
3. looks the tag up in its Bloom filter, setting the collaboration flag
   ``F`` to the filter's false-positive probability on a hit or 0 on a
   miss (lines 4-8), and forwards the request (line 9).

On content arrival it:

- inserts fresh registration-response tags into its filter and
  delivers them (lines 11-12),
- for NACK-free content, inserts the primary tag iff the upstream
  router signalled ``F == 0`` ("reminding rE that the tag is not
  available in its Bloom filter") and forwards (lines 13-18),
- for NACKed content, drops the offending request (lines 19-20),
- validates every *other* aggregated tag — Bloom-filter hit, or
  signature verification followed by insertion — forwarding on success
  and dropping on failure (lines 22-23).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.access_path import paths_match
from repro.core.config import TacticConfig
from repro.core.metrics import MetricsCollector
from repro.core.precheck import edge_precheck
from repro.core.router_base import TacticRouterBase
from repro.crypto.pki import CertificateStore
from repro.ndn.link import Face
from repro.ndn.packets import Data, Interest, Nack, NackReason
from repro.ndn.pit import PitRecord
from repro.sim.engine import Simulator


class EdgeRouter(TacticRouterBase):
    """An rE in the paper's notation."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        cert_store: CertificateStore,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        super().__init__(sim, node_id, config, cert_store, metrics, is_edge=True)

    # ------------------------------------------------------------------
    # Interest path
    # ------------------------------------------------------------------
    def on_interest(self, interest: Interest, in_face: Face) -> None:
        self.counters.note_request()
        now = self.sim.now

        # Registration traffic carries credentials, not tags; it rides
        # the plain NDN path so the provider's response can route back.
        if interest.is_registration():
            self._enqueue_and_forward(interest, in_face, delay=0.0)
            return

        # Requests without a tag are forwarded with F = 0: public
        # content needs no tag, and private content will be NACKed by
        # the content router (threat (a) is caught upstream, by design —
        # the edge cannot know ALD without the Data packet).
        if interest.tag is None:
            forwarded = interest.copy()
            forwarded.flag_f = 0.0
            self._enqueue_and_forward(forwarded, in_face, delay=0.0)
            return

        delay = self.compute_delay("precheck")
        reason = edge_precheck(interest.tag, interest.name, now)
        if reason is not None:
            # Protocol 1 failures drop silently ("the edge routers drop
            # the requests with expired tags"); the requester's window
            # slot recovers via its 1 s request expiry — the throttling
            # the paper credits with request-based DoS prevention.
            self.counters.precheck_drops += 1
            return

        if self.config.enable_access_path:
            delay += self.compute_delay("access_path_check")
            if not paths_match(interest.tag.access_path, interest.observed_access_path):
                self.counters.access_path_drops += 1
                self._nack_client(interest, in_face, NackReason.ACCESS_PATH, delay)
                return

        if self.config.client_signatures:
            # The expensive alternative to the access path (Section 4.A):
            # authenticate the requester against the Pubu in the tag.
            valid, verify_delay = self._verify_client_signature(interest)
            delay += verify_delay
            if not valid:
                self.counters.precheck_drops += 1
                return

        found, lookup_delay = self.bf_lookup(interest.tag)
        delay += lookup_delay
        forwarded = interest.copy()
        forwarded.flag_f = self.current_flag_value() if found else 0.0
        self._enqueue_and_forward(forwarded, in_face, delay)

    def _enqueue_and_forward(self, interest: Interest, in_face: Face, delay: float) -> None:
        record = PitRecord(
            tag=interest.tag,
            flag_f=interest.flag_f,
            in_face=in_face,
            arrived_at=self.sim.now,
            requester_id=interest.requester_id,
            nonce=interest.nonce,
        )
        if self.pit.insert(interest.name, record, now=self.sim.now):
            self.forward_interest(interest, in_face, delay)

    def _verify_client_signature(self, interest: Interest) -> Tuple[bool, float]:
        """Check the request signature against the tag's client locator."""
        self.counters.client_sig_verifications += 1
        delay = self.compute_delay("signature_verify")
        public_key = self.cert_store.try_get_public_key(
            interest.tag.client_key_locator, now=self.sim.now
        )
        if public_key is None or not interest.client_signature:
            return False, delay
        return public_key.verify(interest.signed_portion(), interest.client_signature), delay

    def _nack_client(
        self, interest: Interest, in_face: Face, reason: NackReason, delay: float
    ) -> None:
        self.counters.nacks_issued += 1
        if self.audit is not None:
            key = interest.tag.cache_key() if interest.tag is not None else b""
            self.audit.note_nack(self, key, reason)
        nack = Nack(name=interest.name, reason=reason, nonce=interest.nonce)
        self.send(in_face, nack, delay)

    # ------------------------------------------------------------------
    # Content path
    # ------------------------------------------------------------------
    def on_data(self, data: Data, in_face: Face) -> None:
        entry = self.pit.consume(data.name, now=self.sim.now)
        if entry is None:
            return

        # Registration response: "if D == T_new_u then insert T_new_u
        # into BF rE and forward D to u" (lines 11-12).
        if data.is_tag_response():
            delay = self.bf_insert(data.tag_response)
            for record in entry.records:
                out = data.copy()
                out.span_id = record.nonce
                self.send(record.in_face, out, delay)
            return

        primary_key = data.tag.cache_key() if data.tag is not None else None
        nack_key = data.nack.tag_key if data.nack is not None else None

        for record in entry.records:
            record_key = record.tag.cache_key() if record.tag is not None else b""
            delay = 0.0

            if data.nack is not None and record_key == nack_key:
                # Lines 19-20: drop the request whose tag was NACKed.
                continue

            if record.tag is None:
                # Tag-less requester: deliver only NACK-free (public) data.
                if data.nack is None:
                    self._deliver(data, record, flag=data.flag_f, delay=0.0)
                continue

            if record_key == primary_key and data.nack is None:
                # Lines 13-18: the request that travelled upstream.
                if data.flag_f == 0.0:
                    delay += self.bf_insert(record.tag)
                self._deliver(data, record, flag=data.flag_f, delay=delay)
                continue

            # Lines 22-23: validate every other aggregated tag.
            found, lookup_delay = self.bf_lookup(record.tag)
            delay += lookup_delay
            if found:
                self._deliver(data, record, flag=self.current_flag_value(), delay=delay)
                continue
            valid, verify_delay = self.verify_tag_signature(record.tag)
            delay += verify_delay
            if valid and not record.tag.is_expired(self.sim.now):
                delay += self.bf_insert(record.tag)
                self._deliver(data, record, flag=0.0, delay=delay)
            # else: "drop otherwise" (line 23).

    def _deliver(self, data: Data, record: PitRecord, flag: float, delay: float) -> None:
        out = data.copy()
        out.tag = record.tag
        out.nack = None  # NACKs never propagate past the edge decision
        out.flag_f = flag
        out.span_id = record.nonce
        self.send(record.in_face, out, delay)
