"""The content provider: registration, tag issuance, and publishing.

Section 4.A: "a client u registers her credential with a content
provider p to obtain an authentication tag ... When p receives a tag
request, it verifies client u's credentials and provides her a fresh
tag if she is authorized or drops the request otherwise."

The provider also acts as the origin for its catalog: the first request
for every chunk reaches it before caches warm up, and it applies the
same Protocol 3 validation a content router would.

Key delivery (Section 6): the registration response carries, besides
the signed tag, the provider's catalog master key wrapped under the
client's public key; per-object content keys are derived from it, so a
client holding the unwrapped master key can decrypt any object its
access level entitles it to retrieve.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.access_level import validate_level
from repro.core.config import TacticConfig
from repro.core.content_router import ContentRouterMixin
from repro.core.router_base import TacticRouterBase
from repro.core.tag import Tag, make_tag
from repro.crypto.chacha20 import chacha20_encrypt
from repro.crypto.keywrap import wrap_key
from repro.crypto.pki import Certificate, CertificateStore
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    # Imported lazily at runtime inside manifest_for (import-cycle
    # avoidance); the annotation only needs the name at check time.
    from repro.ndn.manifest import Manifest


@dataclass
class DirectoryEntry:
    """One authorized client as the provider knows it."""

    user_id: str
    secret: bytes
    access_level: int
    public_key: object = None
    revoked: bool = False


class ClientDirectory:
    """The provider's authorization database.

    Credentials are a shared secret established out of band (account
    creation); registration requests must present it.  Revocation here
    stops *re-registration* — already-issued tags die by expiry, which
    is TACTIC's revocation story.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, DirectoryEntry] = {}

    def enroll(
        self,
        user_id: str,
        access_level: int,
        public_key: object = None,
    ) -> bytes:
        """Add a client; returns the credential secret it must present."""
        secret = hashlib.sha256(f"credential:{user_id}".encode()).digest()
        self._entries[user_id] = DirectoryEntry(
            user_id=user_id,
            secret=secret,
            access_level=validate_level(access_level),
            public_key=public_key,
        )
        return secret

    def revoke(self, user_id: str) -> None:
        entry = self._entries.get(user_id)
        if entry is not None:
            entry.revoked = True

    def authenticate(self, user_id: str, credentials: Optional[bytes]) -> Optional[DirectoryEntry]:
        """Return the entry when credentials check out, else None."""
        entry = self._entries.get(user_id)
        if entry is None or entry.revoked or credentials is None:
            return None
        if credentials != entry.secret:
            return None
        return entry

    def access_level_of(self, user_id: str) -> Optional[int]:
        entry = self._entries.get(user_id)
        return entry.access_level if entry is not None else None


@dataclass
class ContentObject:
    """One published object: a name prefix fanning out into chunks."""

    prefix: Name
    access_level: Optional[int]
    num_chunks: int
    chunk_size: int
    key_nonce: bytes = b"\x00" * 12

    def chunk_name(self, index: int) -> Name:
        return self.prefix / f"chunk-{index}"

    def chunk_names(self) -> List[Name]:
        return [self.chunk_name(i) for i in range(self.num_chunks)]


@dataclass
class ProviderStats:
    """Origin-side counters (not part of Fig. 7's router populations)."""

    tags_issued: int = 0
    registrations_refused: int = 0
    chunks_served: int = 0


class Provider(ContentRouterMixin, TacticRouterBase):
    """A content provider p with its catalog and client directory."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        cert_store: CertificateStore,
        keypair: object,
    ) -> None:
        # Providers are origins, not ISP routers: no metrics
        # registration, and an unbounded-enough local store.
        super().__init__(sim, node_id, config, cert_store, metrics=None, is_edge=False)
        self.keypair = keypair
        self.key_locator = f"/{node_id}/KEY/pub"
        self.prefix = Name(f"/{node_id}")
        self.directory = ClientDirectory()
        self.catalog: List[ContentObject] = []
        self.stats = ProviderStats()
        #: Live tags by user, for the explicit-revocation extension
        #: (expired entries are trimmed on each issuance).
        self.issued_tags: Dict[str, List[Tag]] = {}
        #: Availability switch for outage experiments.  TACTIC's point:
        #: cached content stays retrievable while issued tags live, even
        #: with the provider down — only registration stalls.
        self.online = True
        #: Lazily built signed manifests by object prefix.
        self._manifests: Dict[Name, object] = {}
        self._chunk_index: Dict[Name, ContentObject] = {}
        self.master_key = hashlib.sha256(f"master:{node_id}".encode()).digest()
        cert_store.register(
            Certificate(
                locator=self.key_locator,
                public_key=keypair.public,
                subject=node_id,
            )
        )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_catalog(self, access_levels: List[Optional[int]]) -> None:
        """Create ``objects_per_provider`` objects with the given levels
        (cycled); chunk payloads are generated lazily on request."""
        for index in range(self.config.objects_per_provider):
            level = access_levels[index % len(access_levels)]
            obj = ContentObject(
                prefix=self.prefix / f"obj-{index}",
                access_level=validate_level(level) if level is not None else None,
                num_chunks=self.config.chunks_per_object,
                chunk_size=self.config.chunk_size_bytes,
                key_nonce=hashlib.sha256(f"{self.node_id}:{index}".encode()).digest()[:12],
            )
            self.catalog.append(obj)
            for name in obj.chunk_names():
                self._chunk_index[name] = obj

    def content_key_for(self, obj: ContentObject) -> bytes:
        """Per-object key derived from the catalog master key."""
        return hashlib.sha256(self.master_key + bytes(obj.prefix.to_uri(), "utf-8")).digest()

    def _chunk_payload(self, obj: ContentObject, name: Name) -> bytes:
        plaintext = hashlib.sha256(name.to_uri().encode()).digest() * (
            obj.chunk_size // 32
        )
        if not self.config.encrypt_payloads:
            return plaintext[: obj.chunk_size]
        return chacha20_encrypt(
            self.content_key_for(obj), obj.key_nonce, plaintext[: obj.chunk_size]
        )

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if not self.online:
            return  # outage: requests into the origin vanish
        if interest.is_registration():
            self._handle_registration(interest, in_face)
            return
        if self.config.publish_manifests:
            from repro.ndn.manifest import is_manifest_name

            if is_manifest_name(interest.name):
                self._serve_manifest(interest, in_face)
                return
        obj = self._chunk_index.get(Name(interest.name))
        if obj is None:
            self.unroutable_drops += 1
            return
        data = Data(
            name=Name(interest.name),
            payload=self._chunk_payload(obj, Name(interest.name)),
            access_level=obj.access_level,
            provider_key_locator=self.key_locator,
            signature=b"\x00" * 64,  # placeholder content signature (size-modelled)
            created_at=self.sim.now,
        )
        self.stats.chunks_served += 1
        self.serve_content(interest, data, in_face)  # Protocol 3 at origin

    def manifest_for(self, obj: ContentObject) -> "Manifest":
        """The object's signed manifest (built lazily, cached)."""
        from repro.ndn.manifest import Manifest

        cached = self._manifests.get(obj.prefix)
        if cached is not None:
            return cached
        payloads = [self._chunk_payload(obj, name) for name in obj.chunk_names()]
        manifest = Manifest.build(obj.prefix, payloads).sign_with(self.keypair)
        self._manifests[obj.prefix] = manifest
        return manifest

    def _serve_manifest(self, interest: Interest, in_face: Face) -> None:
        """Serve ``<object>/manifest`` with the object's access level
        (manifests inherit their object's access control)."""
        object_prefix = Name(interest.name).parent
        obj = next((o for o in self.catalog if o.prefix == object_prefix), None)
        if obj is None:
            self.unroutable_drops += 1
            return
        manifest = self.manifest_for(obj)
        data = Data(
            name=Name(interest.name),
            payload=manifest.encode(),
            access_level=obj.access_level,
            provider_key_locator=self.key_locator,
            signature=b"\x00" * 64,
            created_at=self.sim.now,
        )
        self.stats.chunks_served += 1
        self.serve_content(interest, data, in_face)

    def _handle_registration(self, interest: Interest, in_face: Face) -> None:
        """Verify credentials and issue a fresh signed tag."""
        # Registration names: /<provider>/register/<user-id>/<seq>
        if len(interest.name) < 3:
            self.stats.registrations_refused += 1
            return
        user_id = interest.name[2]
        entry = self.directory.authenticate(user_id, interest.credentials)
        if entry is None:
            # "drops the request otherwise" — the client's request
            # window recovers via its 1 s expiry.
            self.stats.registrations_refused += 1
            return
        tag = make_tag(
            provider_key_locator=self.key_locator,
            client_key_locator=f"/{user_id}/KEY/pub",
            access_level=entry.access_level,
            access_path=interest.observed_access_path,
            expiry=self.sim.now + self.config.tag_expiry,
            provider_keypair=self.keypair,
        )
        wrapped = (
            wrap_key(entry.public_key, self.master_key)
            if entry.public_key is not None
            else None
        )
        self._record_issued(user_id, tag)
        self.stats.tags_issued += 1
        response = Data(
            name=Name(interest.name),
            tag_response=tag,
            wrapped_key=wrapped,
            provider_key_locator=self.key_locator,
            created_at=self.sim.now,
        )
        response.span_id = interest.nonce
        self.trace_span_serve(interest)
        delay = self.compute_delay("tag_sign")
        self.send(in_face, response, delay)

    def issue_tag_direct(self, user_id: str, access_path: bytes) -> Optional[Tag]:
        """Out-of-band tag issuance (tests and attacker setup)."""
        entry = self.directory._entries.get(user_id)
        if entry is None or entry.revoked:
            return None
        self.stats.tags_issued += 1
        tag = make_tag(
            provider_key_locator=self.key_locator,
            client_key_locator=f"/{user_id}/KEY/pub",
            access_level=entry.access_level,
            access_path=access_path,
            expiry=self.sim.now + self.config.tag_expiry,
            provider_keypair=self.keypair,
        )
        self._record_issued(user_id, tag)
        return tag

    def _record_issued(self, user_id: str, tag: Tag) -> None:
        now = self.sim.now
        live = [t for t in self.issued_tags.get(user_id, []) if not t.is_expired(now)]
        live.append(tag)
        self.issued_tags[user_id] = live
        if self.audit is not None:
            # Ground truth for the decision oracle: only tags recorded
            # here count as genuinely issued.
            self.audit.note_issued(tag)
