"""The Zipf-window client (Section 8.A, "Client and Attacker Setup").

"We implemented a Zipf-window client in which each client is equipped
with a fixed size window for outstanding requests (set to 5 requests in
our simulations).  Clients take the content popularity (Zipf
distribution with alpha = 0.7) into account to select and request new
contents.  Clients first register themselves at the content providers,
if they do not possess any valid tag from that provider, and then
request the selected contents."

The client is event-driven: a pump fills the outstanding-request window
whenever a slot frees (data, NACK, or the 1-second request expiry) and
pauses on a registration round-trip when the needed tag is missing or
expired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import TacticConfig
from repro.core.metrics import UserStats
from repro.core.tag import Tag
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.node import Node
from repro.ndn.packets import Data, Interest, Nack
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.workload.catalog import Catalog, CatalogEntry
from repro.workload.zipf import ZipfSampler


@dataclass
class _Outstanding:
    issued_at: float
    nonce: int
    timeout_event: Event
    retries: int = 0


@dataclass
class _PendingRegistration:
    name: Name
    timeout_event: Event
    nonce: int = 0
    issued_at: float = 0.0


class Client(Node):
    """A legitimate content consumer."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: TacticConfig,
        catalog: Catalog,
        stats: UserStats,
        access_level: int = 1,
        keypair: object = None,
    ) -> None:
        super().__init__(sim, node_id, cs_capacity=0)
        if len(catalog) == 0:
            raise ValueError(f"client {node_id} has an empty catalog")
        self.config = config
        self.catalog = catalog
        self.stats = stats
        self.access_level = access_level
        self.keypair = keypair
        #: provider_id -> credential secret (established by enrollment).
        self.credentials: Dict[str, bytes] = {}
        #: provider_id -> current tag.
        self.tags: Dict[str, Tag] = {}
        #: provider_id -> unwrapped catalog master key.
        self.master_keys: Dict[str, bytes] = {}
        self._outstanding: Dict[Name, _Outstanding] = {}
        self._registration_pending: Dict[str, _PendingRegistration] = {}
        self._zipf = ZipfSampler(len(catalog), config.zipf_alpha, self.rng)
        self._cursor: Optional[Tuple[CatalogEntry, int]] = None
        self._registration_seq = 0
        self._retry_scheduled = False
        self.end_time = float("inf")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float, until: float) -> None:
        """Begin requesting at virtual time ``at``; stop issuing at ``until``."""
        self.end_time = until
        self.sim.schedule_at(at, self._pump)

    @property
    def uplink(self) -> Face:
        return self.faces[0]

    # ------------------------------------------------------------------
    # Content selection
    # ------------------------------------------------------------------
    def _peek_next(self) -> Tuple[CatalogEntry, int]:
        """The next chunk to request, without consuming it."""
        if self._cursor is None or self._cursor[1] >= self._cursor[0].num_chunks:
            entry = self.catalog[self._zipf.sample()]
            self._cursor = (entry, 0)
        return self._cursor

    def _advance(self) -> None:
        entry, index = self._cursor
        self._cursor = (entry, index + 1)

    # ------------------------------------------------------------------
    # Tag acquisition (overridden by attacker modes)
    # ------------------------------------------------------------------
    def _acquire_tag(self, provider_id: str) -> Tuple[Optional[Tag], bool]:
        """Return ``(tag, ready)``; ``ready=False`` pauses the pump.

        A missing or expired tag triggers one in-flight registration
        request per provider; the pump resumes on the response.
        """
        tag = self.tags.get(provider_id)
        if tag is not None and not tag.is_expired(self.sim.now):
            return tag, True
        if provider_id not in self._registration_pending:
            self._send_registration(provider_id)
        return None, False

    def _send_registration(self, provider_id: str) -> None:
        self._registration_seq += 1
        name = Name(f"/{provider_id}/register/{self.node_id}/{self._registration_seq}")
        interest = Interest(
            name=name,
            credentials=self.credentials.get(provider_id),
            issued_at=self.sim.now,
            lifetime=self.config.request_lifetime,
            requester_id=self.node_id,
        )
        timeout = self.sim.schedule(
            self.config.request_lifetime, self._on_registration_timeout, provider_id
        )
        self._registration_pending[provider_id] = _PendingRegistration(
            name=name, timeout_event=timeout, nonce=interest.nonce,
            issued_at=self.sim.now,
        )
        self.stats.tags_requested += 1
        self.stats.tag_request_times.append(self.sim.now)
        self._trace_span_start(interest, kind="registration")
        self.send(self.uplink, interest)

    def _on_registration_timeout(self, provider_id: str) -> None:
        pending = self._registration_pending.pop(provider_id, None)
        if pending is not None:
            self._trace_span_end(pending.nonce, "timeout", self.config.request_lifetime)
            self._pump()

    # ------------------------------------------------------------------
    # Interest-lifecycle span emission (no-ops unless subscribed)
    # ------------------------------------------------------------------
    def _trace_span_start(self, interest: Interest, kind: str) -> None:
        trace = self.sim.trace
        if trace.active and trace.wants("span.start"):
            trace.emit(
                "span.start", self.sim.now,
                span=interest.nonce, node=self.node_id,
                content=str(interest.name), kind=kind,
            )

    def _trace_span_end(self, span: int, outcome: str, latency: float) -> None:
        trace = self.sim.trace
        if span and trace.active and trace.wants("span.end"):
            trace.emit(
                "span.end", self.sim.now,
                span=span, node=self.node_id, outcome=outcome, latency=latency,
            )

    # ------------------------------------------------------------------
    # The window pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        self._retry_scheduled = False
        if self.sim.now >= self.end_time:
            return
        while len(self._outstanding) < self.config.window_size:
            entry, chunk_index = self._peek_next()
            tag, ready = self._acquire_tag(entry.provider_id)
            if not ready:
                self._schedule_retry_if_idle(entry.provider_id)
                return
            name = entry.chunk_name(chunk_index)
            if name in self._outstanding:
                self._advance()
                continue
            self._send_interest(name, tag)
            self._advance()

    def _schedule_retry_if_idle(self, provider_id: str) -> None:
        """Keep the pump alive when no registration response will fire it
        (e.g. an attacker waiting on a shared tag that never arrives)."""
        if provider_id in self._registration_pending or self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.sim.schedule(self.config.request_lifetime, self._pump)

    def _send_interest(self, name: Name, tag: Optional[Tag]) -> None:
        interest = Interest(
            name=name,
            tag=tag,  # tags are immutable once signed; safe to share
            issued_at=self.sim.now,
            lifetime=self.config.request_lifetime,
            requester_id=self.node_id,
        )
        if self.config.client_signatures and self.keypair is not None:
            interest.client_signature = self.keypair.sign(interest.signed_portion())
        timeout = self.sim.schedule(
            self.config.request_lifetime, self._on_timeout, name, interest.nonce
        )
        self._outstanding[name] = _Outstanding(
            issued_at=self.sim.now, nonce=interest.nonce, timeout_event=timeout
        )
        self.stats.chunks_requested += 1
        self._trace_span_start(interest, kind="content")
        self.send(self.uplink, interest)

    def _on_timeout(self, name: Name, nonce: int) -> None:
        pending = self._outstanding.get(name)
        if pending is None or pending.nonce != nonce:
            return
        if (
            pending.retries < self.config.max_retransmissions
            and self.sim.now < self.end_time
        ):
            self._retransmit(name, pending)
            return
        del self._outstanding[name]
        self.stats.timeouts += 1
        self._trace_span_end(pending.nonce, "timeout", self.sim.now - pending.issued_at)
        self._pump()

    def _retransmit(self, name: Name, pending: _Outstanding) -> None:
        """Re-send an expired request in place (same window slot)."""
        provider_id = name[0]
        tag = self.tags.get(provider_id)
        if tag is not None and tag.is_expired(self.sim.now):
            tag = None  # stale; the interest goes out bare and may NACK
        interest = Interest(
            name=name,
            tag=tag,
            issued_at=self.sim.now,
            lifetime=self.config.request_lifetime,
            requester_id=self.node_id,
        )
        self._trace_span_end(
            pending.nonce, "retransmit", self.sim.now - pending.issued_at
        )
        pending.retries += 1
        pending.nonce = interest.nonce
        pending.issued_at = self.sim.now
        pending.timeout_event = self.sim.schedule(
            self.config.request_lifetime, self._on_timeout, name, interest.nonce
        )
        self.stats.retransmissions += 1
        self._trace_span_start(interest, kind="content")
        self.send(self.uplink, interest)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def on_data(self, data: Data, in_face: Face) -> None:
        if data.is_tag_response():
            self._on_tag_response(data)
            return
        name = data.name
        if type(name) is not Name:
            name = Name(name)
        pending = self._outstanding.pop(name, None)
        if pending is None:
            return
        pending.timeout_event.cancel()
        if data.nack is not None:
            self.stats.nacks_received += 1
            self._trace_span_end(
                pending.nonce, "nack", self.sim.now - pending.issued_at
            )
        else:
            self.stats.chunks_received += 1
            if self.can_consume(data):
                self.stats.chunks_usable += 1
            self.stats.latency_samples.append(
                (self.sim.now, self.sim.now - pending.issued_at)
            )
            self._trace_span_end(
                pending.nonce, "data", self.sim.now - pending.issued_at
            )
        self._pump()

    def can_consume(self, data: Data) -> bool:
        """Whether this user can decrypt ``data``.

        Under TACTIC, delivery implies authorization (the network
        already enforced it), so received means usable.  Client-side
        schemes override this with an actual key check.
        """
        return True

    def _on_tag_response(self, data: Data) -> None:
        provider_id = Name(data.name)[0]
        pending = self._registration_pending.pop(provider_id, None)
        if pending is not None:
            pending.timeout_event.cancel()
            self._trace_span_end(
                pending.nonce, "tag", self.sim.now - pending.issued_at
            )
        self.tags[provider_id] = data.tag_response
        self.stats.tags_received += 1
        self.stats.tag_receive_times.append(self.sim.now)
        if data.wrapped_key is not None and self.keypair is not None:
            from repro.crypto.keywrap import KeyWrapError, unwrap_key

            try:
                self.master_keys[provider_id] = unwrap_key(self.keypair, data.wrapped_key)
            except KeyWrapError:
                pass  # corrupted response; the next registration retries
        self._pump()

    def on_nack(self, nack: Nack, in_face: Face) -> None:
        pending = self._outstanding.pop(Name(nack.name), None)
        if pending is None:
            return
        pending.timeout_event.cancel()
        self.stats.nacks_received += 1
        self._trace_span_end(pending.nonce, "nack", self.sim.now - pending.issued_at)
        self._pump()
