"""Protocol 4: the intermediate-router procedure.

An *intermediate router* is a core router that does not hold the
requested content.  On Interest it aggregates: a first request creates
a PIT entry and is forwarded; subsequent requests for the same name add
their ``<Tu, F, InFace>`` tuple to the entry (lines 1-5).

On content arrival the first requester's copy is forwarded as received
— content, tag, and any attached NACK (lines 6-10).  Every *aggregated*
tag is then validated individually (lines 11-26):

- ``F != 0`` and the router decides not to re-validate (probability
  ``1 - F``): deliver,
- otherwise verify the signature; valid tags are inserted into the
  router's Bloom filter and served (with ``F`` forced to 0 when it was
  0, so the edge inserts too), invalid ones get ``<D, Tw, NACK>``.

One deliberate strengthening over the listing: aggregated tags are also
run through the Protocol 1 content pre-check (access level and provider
key-locator match) before the signature work.  The listing validates
only the signature, which would let a low-access-level tag ride an
aggregation race past the access-level check that Protocol 3 applies to
every non-aggregated request; the pre-check is the cheap, designed
remedy and the paper applies it "whenever a router needs to validate a
tag".
"""

from __future__ import annotations

from repro.core.precheck import content_precheck
from repro.ndn.link import Face
from repro.ndn.packets import AttachedNack, Data, Interest, NackReason
from repro.ndn.pit import PitRecord


class IntermediateRouterMixin:
    """Protocol 4, mixed into :class:`~repro.core.core_router.CoreRouter`."""

    def aggregate_or_forward(self, interest: Interest, in_face: Face) -> None:
        """Lines 1-5: PIT aggregation with TACTIC's extended records."""
        record = PitRecord(
            tag=interest.tag,
            flag_f=interest.flag_f,
            in_face=in_face,
            arrived_at=self.sim.now,
            requester_id=interest.requester_id,
            nonce=interest.nonce,
        )
        if self.pit.insert(interest.name, record, now=self.sim.now):
            self.forward_interest(interest, in_face)

    def distribute_content(self, data: Data, in_face: Face) -> None:
        """Lines 6-26: per-record validation and reverse-path delivery."""
        if data.nack is None and not data.is_tag_response():
            # Registration responses are client-specific and never
            # reused; caching them would only pollute the store.
            self.cs.insert(data)
        entry = self.pit.consume(data.name, now=self.sim.now)
        if entry is None:
            return

        primary_key = data.tag.cache_key() if data.tag is not None else None
        primary_served = False

        for record in entry.records:
            record_key = record.tag.cache_key() if record.tag is not None else b""

            # Lines 6-10: the first requester's copy goes out as-is
            # (including any attached NACK).
            if not primary_served and record_key == (primary_key or b""):
                out = data.copy()
                out.tag = record.tag
                out.span_id = record.nonce
                # Lines 6-10 forward the primary copy *as received* —
                # the upstream content router already enforced (and any
                # denial rides along as the attached NACK), so this is
                # the one designed send with no local decision.
                self.send(record.in_face, out)  # simflow: disable=SL010
                primary_served = True
                continue

            self._validate_and_deliver(data, record)

    def _validate_and_deliver(self, data: Data, record: PitRecord) -> None:
        """Lines 11-26 for one aggregated ``<Tw, F, InFacew>`` tuple."""
        out = data.copy()
        out.tag = record.tag
        out.nack = None  # the received NACK named Tu, not Tw
        out.span_id = record.nonce
        delay = 0.0

        if record.tag is None:
            # Tag-less aggregated requester: public data flows, private
            # data gets the NO_TAG NACK a content router would attach.
            if data.access_level is not None:
                self.counters.nacks_issued += 1
                if self.audit is not None:
                    self.audit.note_nack(self, b"", NackReason.NO_TAG)
                if not self.config.nack_carries_content:
                    return
                out.nack = AttachedNack(tag_key=b"", reason=NackReason.NO_TAG)
            # Join of the ALD inspection above: public data flows
            # clean, private data now carries the NO_TAG denial — both
            # arms of the access-level decision are enforcement.
            self.send(record.in_face, out)  # simflow: disable=SL010
            return

        if data.access_level is not None:
            delay += self.compute_delay("precheck")
            reason = content_precheck(record.tag, data)
            if reason is not None:
                self.counters.precheck_drops += 1
                self.counters.nacks_issued += 1
                if self.audit is not None:
                    self.audit.note_nack(self, record.tag.cache_key(), reason)
                if not self.config.nack_carries_content:
                    return
                out.nack = AttachedNack(tag_key=record.tag.cache_key(), reason=reason)
                self.send(record.in_face, out, delay)
                return

        flag = record.flag_f
        if flag != 0.0:
            fired = self.rng.random() < flag
            if self.audit is not None:
                self.audit.note_f_recheck(self, record.tag, fired, flag)
            if not fired:
                # Line 12-13: decide not to re-validate; trust the
                # edge's BF decision carried in F — the probabilistic
                # draw above *is* the protocol's enforcement here, and
                # the audit oracle records it as an f_recheck.
                out.flag_f = flag
                self.send(record.in_face, out, delay)  # simflow: disable=SL010
                return

        # Lines 14-24: F == 0, or the probabilistic re-validation fired.
        valid, verify_delay = self.verify_tag_signature(record.tag)
        delay += verify_delay
        if valid:
            delay += self.bf_insert(record.tag)
            out.flag_f = 0.0 if flag == 0.0 else flag
            self.send(record.in_face, out, delay)
        else:
            self.counters.nacks_issued += 1
            if self.audit is not None:
                self.audit.note_nack(
                    self, record.tag.cache_key(), NackReason.INVALID_SIGNATURE
                )
            if not self.config.nack_carries_content:
                return
            out.nack = AttachedNack(
                tag_key=record.tag.cache_key(), reason=NackReason.INVALID_SIGNATURE
            )
            self.send(record.in_face, out, delay)
