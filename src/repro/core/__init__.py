"""TACTIC's core protocols.

Everything Section 4-5 of the paper describes lives here:

- :mod:`~repro.core.tag` -- the signed 6-tuple authentication tag,
- :mod:`~repro.core.access_level` -- the hierarchical access-level model,
- :mod:`~repro.core.access_path` -- the rolling XOR-of-hashed-identities
  location binding,
- :mod:`~repro.core.precheck` -- Protocol 1 (cheap field checks before
  Bloom-filter and signature work),
- :mod:`~repro.core.edge_router` -- Protocol 2,
- :mod:`~repro.core.content_router` / :mod:`~repro.core.intermediate_router`
  -- Protocols 3 and 4 (a :class:`~repro.core.core_router.CoreRouter`
  plays whichever role its content store dictates per request),
- :mod:`~repro.core.provider` -- registration, tag issuance, publishing,
- :mod:`~repro.core.client` / :mod:`~repro.core.attacker` -- the user
  population from the threat model,
- :mod:`~repro.core.revocation` -- expiry-based revocation,
- :mod:`~repro.core.config` / :mod:`~repro.core.metrics` -- knobs and
  measurement.
"""

from repro.core.access_level import PUBLIC, satisfies
from repro.core.access_path import expected_access_path
from repro.core.attacker import Attacker, AttackerMode
from repro.core.client import Client
from repro.core.config import TacticConfig
from repro.core.core_router import CoreRouter
from repro.core.edge_router import EdgeRouter
from repro.core.metrics import MetricsCollector, OpCounters, UserStats
from repro.core.precheck import content_precheck, edge_precheck
from repro.core.provider import ClientDirectory, ContentObject, Provider
from repro.core.revocation import ExpiryRevocation
from repro.core.tag import Tag

__all__ = [
    "Attacker",
    "AttackerMode",
    "Client",
    "ClientDirectory",
    "ContentObject",
    "CoreRouter",
    "EdgeRouter",
    "ExpiryRevocation",
    "MetricsCollector",
    "OpCounters",
    "PUBLIC",
    "Provider",
    "Tag",
    "TacticConfig",
    "UserStats",
    "content_precheck",
    "edge_precheck",
    "expected_access_path",
    "satisfies",
]
