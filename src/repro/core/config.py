"""Configuration for TACTIC simulations.

One dataclass gathers every knob the paper's evaluation sweeps
(Bloom-filter capacity and maximum FPP, tag expiry, topology and
workload parameters) plus reproduction-specific switches (signature
scheme, access-path enforcement).  Defaults reproduce the paper's base
configuration: BF capacity 500 at FPP 1e-4 with 5 hashes, 10 s tag
expiry, Zipf alpha = 0.7, request window 5, 50 objects x 50 chunks per
provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.crypto.cost_model import ComputationCostModel, PAPER_COST_MODEL


@dataclass
class TacticConfig:
    """All simulation knobs in one place."""

    # --- Bloom filters (Section 8.A) ---
    bf_capacity: int = 500
    #: Saturation (reset) threshold — the FPP lever Fig. 8 sweeps.
    bf_max_fpp: float = 1e-4
    bf_num_hashes: int = 5
    #: Reference FPP the bit count is derived from (fixed, so sweeping
    #: ``bf_max_fpp`` changes the reset threshold, not the filter size).
    bf_sizing_fpp: float = 1e-4

    # --- Tags / revocation ---
    tag_expiry: float = 10.0
    #: Enforce the access-path location binding at edge routers.  The
    #: paper's own simulations left this off; see access_path module.
    enable_access_path: bool = True
    #: The alternative client-authentication mode the access path was
    #: designed to avoid (Section 4.A): clients sign every request and
    #: edge routers verify against the ``Pubu`` locator in the tag —
    #: "the expensive signature verification".
    client_signatures: bool = False

    # --- Signature scheme: 'simulated' (HMAC, fast) or 'rsa' (real) ---
    signature_scheme: str = "simulated"
    rsa_bits: int = 512

    #: Bloom-filter tag caching at routers.  Disabling it is the no-BF
    #: ablation baseline: every content/intermediate validation falls
    #: back to a signature verification.
    use_bloom_filters: bool = True

    #: The paper's design choice that a rejection still carries the
    #: content downstream ("rcC returns the content D even if Tu is
    #: invalid ... to satisfy other possible valid aggregated requests").
    #: False is the drop-only ablation: invalid tags elicit nothing, and
    #: valid requests aggregated behind them starve until timeout.
    nack_carries_content: bool = True

    # --- Content catalog (Section 8.A "Content Producer Setup") ---
    objects_per_provider: int = 50
    chunks_per_object: int = 50
    chunk_size_bytes: int = 1024
    #: Distinct private access levels contents draw from (uniformly).
    num_access_levels: int = 3
    #: Fraction of objects published as public (ALD = NULL).
    public_fraction: float = 0.0
    #: Encrypt chunk payloads with ChaCha20 (exercises the full crypto
    #: path; off by default for speed — sizes are modelled either way).
    encrypt_payloads: bool = False
    #: Publish a signed FLIC-style manifest per object (at
    #: ``<object>/manifest``) so consumers can hash-verify every chunk
    #: against one provider signature.
    publish_manifests: bool = False

    # --- Client / attacker workload (Section 8.A) ---
    window_size: int = 5
    request_lifetime: float = 1.0
    #: Times a client re-sends an expired request before giving the
    #: window slot up (0 = paper-faithful: expiry frees the slot).
    max_retransmissions: int = 0
    zipf_alpha: float = 0.7
    #: Per-request think time drawn uniformly in [0, think_time_max];
    #: keeps clients from phase-locking.
    think_time_max: float = 0.01
    #: Independent per-packet loss probability on *wireless-edge* links
    #: (client-AP-edge); models fading/interference.  0 = lossless.
    edge_loss_rate: float = 0.0

    # --- Router tables ---
    cs_capacity: int = 4096
    #: Content-store eviction policy: 'lru' (ndnSIM default) | 'fifo' | 'lfu'.
    cs_policy: str = "lru"
    pit_lifetime: float = 2.0
    #: Maximum simultaneous PIT entries per router (0 = unlimited); the
    #: interest-flooding backstop.
    pit_capacity: int = 0
    #: Edge routers do not cache (content routers are core routers).
    edge_cs_capacity: int = 0

    # --- Computation latency model ---
    cost_model: ComputationCostModel = field(default_factory=lambda: PAPER_COST_MODEL)

    # --- Simulation ---
    duration: float = 50.0
    #: Extra virtual time after ``duration`` during which no new
    #: requests are issued but in-flight ones may complete, so delivery
    #: ratios are not depressed by the cutoff.
    drain_time: float = 2.0
    seed: int = 1

    def with_(self, **overrides: object) -> "TacticConfig":
        """Functional update; returns a modified copy."""
        return replace(self, **overrides)

    def validate(self) -> None:
        if self.bf_capacity <= 0:
            raise ValueError("bf_capacity must be positive")
        if not 0.0 < self.bf_max_fpp < 1.0:
            raise ValueError("bf_max_fpp must be in (0, 1)")
        if self.tag_expiry <= 0:
            raise ValueError("tag_expiry must be positive")
        if self.signature_scheme not in ("simulated", "rsa"):
            raise ValueError(f"unknown signature scheme {self.signature_scheme!r}")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0.0 <= self.public_fraction <= 1.0:
            raise ValueError("public_fraction must be in [0, 1]")
        if self.cs_policy not in ("lru", "fifo", "lfu"):
            raise ValueError(f"unknown cs_policy {self.cs_policy!r}")
