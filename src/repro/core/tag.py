"""The TACTIC authentication tag.

Section 4.A: "A tag is a 6-tuple composed of the provider's public key
locator (Pubp), the client's public key locator (Pubu), the client's
access level (ALu), the client's access path (APu), and an expiry time
(Te), and is represented as Tpu = <Pubp, ALu, Pubu, APu, Te>."  The
provider "generates a new tag, signs it to guarantee its integrity and
provenance, and sends it to u".

(The enumeration lists five named fields for a "6-tuple"; the sixth
element is the provider's signature over the rest, which every router
verifies — we model it exactly so.)
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.access_level import validate_level
from repro.ndn.name import Name

#: Wire-size estimate used for link serialization: the paper argues a
#: tag is "a couple hundred bytes" (locator names + 32-byte access path
#: + expiry + signature).
_FIXED_FIELDS_SIZE = 8 + 4 + 32  # expiry + access level + access path


@dataclass(slots=True)
class Tag:
    """A provider-issued, provider-signed authentication tag.

    Attributes
    ----------
    provider_key_locator:
        ``Pubp`` -- name of the provider's public key packet; routers
        resolve it through the PKI and compare its prefix against
        requested content names (Protocol 1).
    client_key_locator:
        ``Pubu`` -- name of the client's public key; lets routers
        authenticate request signatures (kept for fidelity; the fast
        path authenticates via the access path instead).
    access_level:
        ``ALu`` -- the client's access level at this provider.
    access_path:
        ``APu`` -- XOR of hashed identities of the entities between the
        client and its edge router, bound at registration time.
    expiry:
        ``Te`` -- absolute (virtual) expiry time; expiry is TACTIC's
        revocation mechanism.
    signature:
        Provider signature over the canonical encoding of the fields.
    """

    provider_key_locator: str
    client_key_locator: str
    access_level: Optional[int]
    access_path: bytes
    expiry: float
    signature: bytes = b""
    # Lazy caches (excluded from identity): tags are immutable once
    # signed, so the cache key, wire size, and provider prefix are each
    # computed at most once per instance instead of per packet hop.
    _cache_key: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )
    _esize: int = field(default=-1, init=False, repr=False, compare=False)
    _prefix: Optional[Name] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.access_level = validate_level(self.access_level)
        if len(self.access_path) != 32:
            raise ValueError(
                f"access path must be 32 bytes, got {len(self.access_path)}"
            )

    # ------------------------------------------------------------------
    # Canonical encoding and signing
    # ------------------------------------------------------------------
    def signed_bytes(self) -> bytes:
        """Canonical encoding of the five named fields (signature input)."""
        level = -1 if self.access_level is None else self.access_level
        return b"|".join(
            [
                b"TACTICv1",
                self.provider_key_locator.encode("utf-8"),
                self.client_key_locator.encode("utf-8"),
                struct.pack(">i", level),
                self.access_path,
                struct.pack(">d", self.expiry),
            ]
        )

    def sign_with(self, keypair: Any) -> "Tag":
        """Return a copy signed by ``keypair`` (provider-side)."""
        return replace(self, signature=keypair.sign(self.signed_bytes()))

    def verify_signature(self, public_key: Any) -> bool:
        """Router-side integrity/provenance check."""
        if not self.signature:
            return False
        return public_key.verify(self.signed_bytes(), self.signature)

    # ------------------------------------------------------------------
    # Field checks used by Protocol 1
    # ------------------------------------------------------------------
    def provider_prefix(self) -> Name:
        """``N(Pub_p^T)``: the provider name prefix of the key locator.

        Key locators look like ``/prov-3/KEY/pub``; the provider prefix
        is the first component.
        """
        prefix = self._prefix
        if prefix is None:
            locator = Name(self.provider_key_locator)
            prefix = locator if len(locator) == 0 else locator.prefix(1)
            self._prefix = prefix
        return prefix

    def is_expired(self, now: float) -> bool:
        return self.expiry < now

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def cache_key(self) -> bytes:
        """Stable identifier of this exact signed tag (Bloom-filter key).

        Cached after first computation — tags are immutable once signed
        (``sign_with`` returns a fresh instance).
        """
        key = self._cache_key
        if key is None:
            key = hashlib.sha256(self.signed_bytes() + b"#" + self.signature).digest()
            self._cache_key = key
        return key

    def encoded_size(self) -> int:
        """Wire-size estimate in bytes."""
        size = self._esize
        if size < 0:
            size = (
                len(self.provider_key_locator)
                + len(self.client_key_locator)
                + _FIXED_FIELDS_SIZE
                + len(self.signature)
            )
            self._esize = size
        return size

    def copy(self) -> "Tag":
        return replace(self)


def make_tag(
    provider_key_locator: str,
    client_key_locator: str,
    access_level: Optional[int],
    access_path: bytes,
    expiry: float,
    provider_keypair: Any,
) -> Tag:
    """Build and sign a tag in one step (the provider's issuance path)."""
    tag = Tag(
        provider_key_locator=provider_key_locator,
        client_key_locator=client_key_locator,
        access_level=access_level,
        access_path=access_path,
        expiry=expiry,
    )
    return tag.sign_with(provider_keypair)
