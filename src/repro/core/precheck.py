"""Protocol 1: the tag pre-check procedure.

"Our low-cost tag pre-check protocol ... employed by routers in RE and
RcC to validate the received tag using the tag's ALu, expiry time (Te),
and provider's name prefix before the more expensive BF lookup and
signature verification operations."

Two halves, matching the protocol listing:

- the **edge-router** half compares the provider name prefix extracted
  from the tag against the requested content's name prefix (preventing
  a tag from provider A retrieving provider B's content) and rejects
  expired tags,
- the **content-router** half enforces the hierarchical access-level
  rule ``ALD <= ALTu`` and requires the provider key locator in the tag
  to match the one embedded in the content packet.

Both halves return the :class:`~repro.ndn.packets.NackReason` explaining
the failure, or ``None`` when the check passes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.access_level import satisfies
from repro.core.tag import Tag
from repro.ndn.name import Name, NameLike
from repro.ndn.packets import Data, NackReason


def edge_precheck(tag: Tag, content_name: NameLike, now: float) -> Optional[NackReason]:
    """Protocol 1, lines 1-7 (at the edge router).

    >>> from repro.core.tag import Tag
    >>> t = Tag('/prov-0/KEY/pub', '/client-0/KEY/pub', 1, b'\\x00'*32, 50.0)
    >>> edge_precheck(t, '/prov-0/obj-1/chunk-0', now=10.0) is None
    True
    >>> edge_precheck(t, '/prov-1/obj-1/chunk-0', now=10.0)
    <NackReason.PREFIX_MISMATCH: 'prefix-mismatch'>
    >>> edge_precheck(t, '/prov-0/obj-1/chunk-0', now=99.0)
    <NackReason.EXPIRED_TAG: 'expired-tag'>
    """
    if type(content_name) is not Name:
        content_name = Name(content_name)
    if len(content_name) == 0:
        return NackReason.PREFIX_MISMATCH
    if not tag.provider_prefix().is_prefix_of(content_name):
        return NackReason.PREFIX_MISMATCH
    if tag.is_expired(now):
        return NackReason.EXPIRED_TAG
    return None


def content_precheck(tag: Optional[Tag], data: Data) -> Optional[NackReason]:
    """Protocol 1, lines 8-14 (at the content router).

    Public content (``ALD`` is NULL) passes regardless of the tag --
    "we set the ALD of a publicly available data to NULL, which allows
    an rcC to return the requested content without tag verification."
    """
    if data.access_level is None:
        return None
    if tag is None:
        return NackReason.NO_TAG
    if not satisfies(tag.access_level, data.access_level):
        return NackReason.ACCESS_LEVEL
    if data.provider_key_locator != tag.provider_key_locator:
        return NackReason.KEY_MISMATCH
    return None
