"""Measurement: per-router operation counters and global collectors.

The evaluation criteria (Section 8.A):

- user-based — average content-retrieval latency, request satisfaction
  ratio, tag statistics (requested/received tags);
- network-based — computational overhead (BF insertions, lookups,
  signature verifications) and the BF reset threshold (requests a
  router receives before its filter saturates and resets).

:class:`OpCounters` hangs off every TACTIC router; :class:`UserStats`
off every client/attacker; :class:`MetricsCollector` aggregates both
into the figures' series and the tables' cells.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class OpCounters:
    """Computation-event counters for one router (Fig. 7 / Fig. 8)."""

    bf_lookups: int = 0
    bf_inserts: int = 0
    signature_verifications: int = 0
    #: Per-request client-signature checks (only in the expensive
    #: authentication mode the access path replaces).
    client_sig_verifications: int = 0
    bf_resets: int = 0
    precheck_drops: int = 0
    access_path_drops: int = 0
    nacks_issued: int = 0
    #: Interests processed since the last BF reset, and the completed
    #: intervals (the paper's "number of requests for a BF reset").
    requests_since_reset: int = 0
    reset_intervals: List[int] = field(default_factory=list)

    def note_request(self) -> None:
        self.requests_since_reset += 1

    def note_reset(self) -> None:
        self.bf_resets += 1
        self.reset_intervals.append(self.requests_since_reset)
        self.requests_since_reset = 0

    def merged_with(self, other: "OpCounters") -> "OpCounters":
        return OpCounters(
            bf_lookups=self.bf_lookups + other.bf_lookups,
            bf_inserts=self.bf_inserts + other.bf_inserts,
            signature_verifications=(
                self.signature_verifications + other.signature_verifications
            ),
            client_sig_verifications=(
                self.client_sig_verifications + other.client_sig_verifications
            ),
            bf_resets=self.bf_resets + other.bf_resets,
            precheck_drops=self.precheck_drops + other.precheck_drops,
            access_path_drops=self.access_path_drops + other.access_path_drops,
            nacks_issued=self.nacks_issued + other.nacks_issued,
            requests_since_reset=0,
            reset_intervals=self.reset_intervals + other.reset_intervals,
        )


@dataclass
class UserStats:
    """Per-user workload outcomes (Table IV, Fig. 5, Fig. 6)."""

    user_id: str
    is_attacker: bool = False
    chunks_requested: int = 0
    chunks_received: int = 0
    #: Chunks the user could actually *consume* (decrypt).  Equal to
    #: ``chunks_received`` under TACTIC (delivery implies authorization);
    #: lower under client-side schemes where undecryptable content is
    #: delivered anyway.
    chunks_usable: int = 0
    nacks_received: int = 0
    timeouts: int = 0
    retransmissions: int = 0
    tags_requested: int = 0
    tags_received: int = 0
    #: (completion time, latency) samples for satisfied requests.
    latency_samples: List[Tuple[float, float]] = field(default_factory=list)
    #: timestamps of tag request / tag receive events (Fig. 6 rates).
    tag_request_times: List[float] = field(default_factory=list)
    tag_receive_times: List[float] = field(default_factory=list)

    def delivery_ratio(self) -> float:
        if self.chunks_requested == 0:
            return 0.0
        return self.chunks_received / self.chunks_requested


class MetricsCollector:
    """Aggregates user and router measurements for one simulation run."""

    def __init__(self) -> None:
        self.users: Dict[str, UserStats] = {}
        self.edge_counters: Dict[str, OpCounters] = {}
        self.core_counters: Dict[str, OpCounters] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def user(self, user_id: str, is_attacker: bool = False) -> UserStats:
        stats = self.users.get(user_id)
        if stats is None:
            stats = UserStats(user_id=user_id, is_attacker=is_attacker)
            self.users[user_id] = stats
        return stats

    def register_router(self, node_id: str, counters: OpCounters, is_edge: bool) -> None:
        target = self.edge_counters if is_edge else self.core_counters
        target[node_id] = counters

    # ------------------------------------------------------------------
    # Aggregation: Table IV
    # ------------------------------------------------------------------
    def _population(self, attackers: bool) -> List[UserStats]:
        return [u for u in self.users.values() if u.is_attacker == attackers]

    def total_requested(self, attackers: bool = False) -> int:
        return sum(u.chunks_requested for u in self._population(attackers))

    def total_received(self, attackers: bool = False) -> int:
        return sum(u.chunks_received for u in self._population(attackers))

    def total_usable(self, attackers: bool = False) -> int:
        return sum(u.chunks_usable for u in self._population(attackers))

    def delivery_ratio(self, attackers: bool = False) -> float:
        requested = self.total_requested(attackers)
        if requested == 0:
            return 0.0
        return self.total_received(attackers) / requested

    def usable_ratio(self, attackers: bool = False) -> float:
        """Fraction of requested chunks actually consumable (decryptable)."""
        requested = self.total_requested(attackers)
        if requested == 0:
            return 0.0
        return self.total_usable(attackers) / requested

    # ------------------------------------------------------------------
    # Aggregation: Fig. 5 (per-second mean latency)
    # ------------------------------------------------------------------
    def latency_series(self, bucket: float = 1.0) -> List[Tuple[float, float]]:
        """Per-bucket mean retrieval latency over legitimate clients."""
        sums: Dict[int, float] = defaultdict(float)
        counts: Dict[int, int] = defaultdict(int)
        for user in self._population(attackers=False):
            for when, latency in user.latency_samples:
                index = int(when // bucket)
                sums[index] += latency
                counts[index] += 1
        return [
            (index * bucket, sums[index] / counts[index])
            for index in sorted(sums)
        ]

    def mean_latency(self) -> Optional[float]:
        total, count = 0.0, 0
        for user in self._population(attackers=False):
            for _, latency in user.latency_samples:
                total += latency
                count += 1
        return total / count if count else None

    # ------------------------------------------------------------------
    # Aggregation: Fig. 6 (tag rates)
    # ------------------------------------------------------------------
    def tag_rates(self, duration: float) -> Tuple[float, float]:
        """(tag-request rate Q, tag-receive rate R) per second, clients only."""
        if duration <= 0:
            return (0.0, 0.0)
        clients = self._population(attackers=False)
        requested = sum(u.tags_requested for u in clients)
        received = sum(u.tags_received for u in clients)
        return (requested / duration, received / duration)

    # ------------------------------------------------------------------
    # Aggregation: Fig. 7 (operation counts) and Fig. 8 / Table V
    # ------------------------------------------------------------------
    def merged_counters(self, edge: bool) -> OpCounters:
        source = self.edge_counters if edge else self.core_counters
        merged = OpCounters()
        for counters in source.values():
            merged = merged.merged_with(counters)
        return merged

    def reset_threshold(self, edge: bool) -> Optional[float]:
        """Mean number of requests a router sees before one BF reset."""
        intervals = self.merged_counters(edge).reset_intervals
        if not intervals:
            return None
        return sum(intervals) / len(intervals)

    def total_bf_resets(self, edge: bool) -> int:
        return self.merged_counters(edge).bf_resets
