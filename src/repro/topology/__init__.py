"""ISP topologies for TACTIC experiments.

The paper evaluates on four scale-free topologies (Table III) with
500 Mbps / 1 ms core links and 10 Mbps / 2 ms edge links.  This package
generates *plans* — pure-data descriptions of routers, providers, users,
access points, and links — which :mod:`repro.experiments` materializes
into live simulation nodes.
"""

from repro.topology.scale_free import LinkSpec, TopologyPlan, generate_scale_free_plan
from repro.topology.presets import PAPER_TOPOLOGIES, TopologyPreset, paper_topology_plan

__all__ = [
    "LinkSpec",
    "PAPER_TOPOLOGIES",
    "TopologyPlan",
    "TopologyPreset",
    "generate_scale_free_plan",
    "paper_topology_plan",
]
