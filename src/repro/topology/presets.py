"""The paper's four topologies (Table III).

========================  =======  =======  =======  =======
Entity                    Topo. 1  Topo. 2  Topo. 3  Topo. 4
========================  =======  =======  =======  =======
Core routers                   80      180      370      560
Edge routers                   20       20       30       40
Providers                      10       10       10       10
Legitimate clients             35       71      143      213
Attackers                      15       29       57       87
========================  =======  =======  =======  =======

Attackers are "roughly one-third" of the user base and clients
"two-thirds" — the preset numbers match the table exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.topology.scale_free import TopologyPlan, generate_scale_free_plan


@dataclass(frozen=True)
class TopologyPreset:
    """One Table III row."""

    index: int
    num_core: int
    num_edge: int
    num_providers: int
    num_clients: int
    num_attackers: int

    def scaled(self, factor: float) -> "TopologyPreset":
        """A proportionally smaller/larger variant (for quick runs).

        Router counts scale with ``factor`` but never drop below the
        minimum viable sizes (3 core, 1 edge, 1 provider, 1 client).
        """
        return TopologyPreset(
            index=self.index,
            num_core=max(3, round(self.num_core * factor)),
            num_edge=max(1, round(self.num_edge * factor)),
            num_providers=max(1, round(self.num_providers * factor)),
            num_clients=max(1, round(self.num_clients * factor)),
            num_attackers=max(1, round(self.num_attackers * factor)),
        )


PAPER_TOPOLOGIES: Dict[int, TopologyPreset] = {
    1: TopologyPreset(1, num_core=80, num_edge=20, num_providers=10,
                      num_clients=35, num_attackers=15),
    2: TopologyPreset(2, num_core=180, num_edge=20, num_providers=10,
                      num_clients=71, num_attackers=29),
    3: TopologyPreset(3, num_core=370, num_edge=30, num_providers=10,
                      num_clients=143, num_attackers=57),
    4: TopologyPreset(4, num_core=560, num_edge=40, num_providers=10,
                      num_clients=213, num_attackers=87),
}


def paper_topology_plan(index: int, seed: int = 0, scale: float = 1.0) -> TopologyPlan:
    """Generate the plan for paper topology ``index`` (1-4).

    ``scale`` shrinks every entity count proportionally for CI-speed
    runs while keeping the Table III ratios (documented wherever used).
    """
    preset = PAPER_TOPOLOGIES.get(index)
    if preset is None:
        raise KeyError(f"unknown topology index {index}; expected 1-4")
    if scale != 1.0:
        preset = preset.scaled(scale)
    return generate_scale_free_plan(
        num_core=preset.num_core,
        num_edge=preset.num_edge,
        num_providers=preset.num_providers,
        num_clients=preset.num_clients,
        num_attackers=preset.num_attackers,
        seed=seed,
    )
