"""Scale-free topology plan generation.

Produces a :class:`TopologyPlan`: node identifiers by role, link specs
with core/edge parameters, and the attachment maps (client -> access
point -> edge router; provider -> core router).  Plans are pure data so
they can be generated, inspected, and tested without a simulator.

The ISP core is a Barabási–Albert scale-free graph (the paper: "four
different scale free network topologies").  Edge routers attach to
randomly chosen core routers; providers attach to the highest-degree
core routers ("providers on top of the hierarchy"); users spread over
access points hanging off the edge routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.sim.rng import seeded_stream

#: Paper link parameters.
CORE_BANDWIDTH_BPS = 500e6
CORE_LATENCY_S = 0.001
EDGE_BANDWIDTH_BPS = 10e6
EDGE_LATENCY_S = 0.002


@dataclass(frozen=True)
class LinkSpec:
    """One link in a plan: endpoint ids plus physical parameters."""

    a: str
    b: str
    bandwidth_bps: float
    latency: float
    kind: str  # 'core' or 'edge'


@dataclass
class TopologyPlan:
    """Pure-data description of a simulation topology."""

    core_ids: List[str] = field(default_factory=list)
    edge_ids: List[str] = field(default_factory=list)
    provider_ids: List[str] = field(default_factory=list)
    ap_ids: List[str] = field(default_factory=list)
    client_ids: List[str] = field(default_factory=list)
    attacker_ids: List[str] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)
    #: client/attacker id -> access point id
    user_ap: Dict[str, str] = field(default_factory=dict)
    #: access point id -> edge router id
    ap_edge: Dict[str, str] = field(default_factory=dict)
    #: provider id -> core router id
    provider_core: Dict[str, str] = field(default_factory=dict)

    @property
    def user_ids(self) -> List[str]:
        return self.client_ids + self.attacker_ids

    def edge_of_user(self, user_id: str) -> str:
        return self.ap_edge[self.user_ap[user_id]]

    def validate(self) -> None:
        """Sanity checks: connectivity and complete attachment maps."""
        graph = nx.Graph()
        for link in self.links:
            graph.add_edge(link.a, link.b)
        all_ids = (
            self.core_ids
            + self.edge_ids
            + self.provider_ids
            + self.ap_ids
            + self.user_ids
        )
        missing = [i for i in all_ids if i not in graph]
        if missing:
            raise ValueError(f"nodes with no links: {missing[:5]}")
        if not nx.is_connected(graph):
            raise ValueError("topology is not connected")
        for user in self.user_ids:
            if user not in self.user_ap:
                raise ValueError(f"user {user} has no access point")


def generate_scale_free_plan(
    num_core: int,
    num_edge: int,
    num_providers: int,
    num_clients: int,
    num_attackers: int,
    seed: int = 0,
    ba_attachment: int = 2,
    users_per_ap: int = 4,
    core_bandwidth_bps: float = CORE_BANDWIDTH_BPS,
    core_latency: float = CORE_LATENCY_S,
    edge_bandwidth_bps: float = EDGE_BANDWIDTH_BPS,
    edge_latency: float = EDGE_LATENCY_S,
) -> TopologyPlan:
    """Generate a deterministic scale-free topology plan.

    Parameters mirror Table III rows; ``seed`` controls every random
    choice (graph wiring, attachment points, user placement).
    """
    if num_core < ba_attachment + 1:
        raise ValueError(f"need at least {ba_attachment + 1} core routers")
    if num_edge < 1 or num_providers < 1:
        raise ValueError("need at least one edge router and one provider")

    rng = seeded_stream(seed)
    plan = TopologyPlan()
    plan.core_ids = [f"core-{i}" for i in range(num_core)]
    plan.edge_ids = [f"edge-{i}" for i in range(num_edge)]
    plan.provider_ids = [f"prov-{i}" for i in range(num_providers)]

    # ISP core: Barabási–Albert scale-free graph.
    core_graph = nx.barabasi_albert_graph(num_core, ba_attachment, seed=seed)
    for a, b in core_graph.edges():
        plan.links.append(
            LinkSpec(
                a=f"core-{a}",
                b=f"core-{b}",
                bandwidth_bps=core_bandwidth_bps,
                latency=core_latency,
                kind="core",
            )
        )

    # Providers sit at the top of the hierarchy: attach to the
    # highest-degree core routers (hubs), one provider per hub,
    # wrapping around if providers outnumber hubs.
    hubs = sorted(core_graph.degree, key=lambda kv: kv[1], reverse=True)
    hub_ids = [f"core-{node}" for node, _ in hubs]
    for i, provider in enumerate(plan.provider_ids):
        anchor = hub_ids[i % len(hub_ids)]
        plan.provider_core[provider] = anchor
        plan.links.append(
            LinkSpec(
                a=provider,
                b=anchor,
                bandwidth_bps=core_bandwidth_bps,
                latency=core_latency,
                kind="core",
            )
        )

    # Edge routers attach to random core routers (ISP infrastructure
    # links run at core rates).
    for edge in plan.edge_ids:
        anchor = f"core-{rng.randrange(num_core)}"
        plan.links.append(
            LinkSpec(
                a=edge,
                b=anchor,
                bandwidth_bps=core_bandwidth_bps,
                latency=core_latency,
                kind="core",
            )
        )

    # Users (clients + attackers) spread over access points; APs hang
    # off edge routers at wireless-edge rates.
    plan.client_ids = [f"client-{i}" for i in range(num_clients)]
    plan.attacker_ids = [f"attacker-{i}" for i in range(num_attackers)]
    users = plan.user_ids[:]
    rng.shuffle(users)
    num_aps = max(num_edge, (len(users) + users_per_ap - 1) // users_per_ap)
    plan.ap_ids = [f"ap-{i}" for i in range(num_aps)]
    for i, ap in enumerate(plan.ap_ids):
        edge = plan.edge_ids[i % num_edge]
        plan.ap_edge[ap] = edge
        plan.links.append(
            LinkSpec(
                a=ap,
                b=edge,
                bandwidth_bps=edge_bandwidth_bps,
                latency=edge_latency,
                kind="edge",
            )
        )
    for i, user in enumerate(users):
        ap = plan.ap_ids[i % num_aps]
        plan.user_ap[user] = ap
        plan.links.append(
            LinkSpec(
                a=user,
                b=ap,
                bandwidth_bps=edge_bandwidth_bps,
                latency=edge_latency,
                kind="edge",
            )
        )

    plan.validate()
    return plan
