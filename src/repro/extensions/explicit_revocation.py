"""Explicit (sub-expiry) revocation via counting filters + blacklists.

TACTIC's stock revocation is tag expiry: worst-case exposure is one
tag lifetime.  This extension adds an ISP control plane that kills a
specific tag *now*:

- routers swap their plain Bloom filter for a
  :class:`RevocableTagFilter` (a counting filter behind the standard
  filter API) so a validated tag can be *removed* again, and keep a
  blacklist of revoked keys so signature verification cannot re-admit
  a revoked-but-unexpired tag;
- a :class:`RevocationAuthority` broadcasts a revocation to every
  participating router with a per-router propagation delay, and
  optionally revokes the client at the provider directory so
  re-registration fails too.

Exposure drops from ``tag_expiry`` to the control-plane propagation
delay — at the price of per-router blacklist state and 16-bit counters
instead of bits (the trade-off that made the paper defer this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set

from repro.core.core_router import CoreRouter
from repro.core.edge_router import EdgeRouter
from repro.core.provider import Provider
from repro.filters.counting import CountingBloomFilter
from repro.filters.params import size_for_capacity
from repro.sim.engine import Simulator


class RevocableTagFilter:
    """A counting Bloom filter exposing the plain-filter API the TACTIC
    routers consume (contains/insert/reset/saturation/counters), plus
    :meth:`remove` for revocation."""

    def __init__(
        self,
        capacity: int,
        max_fpp: float = 1e-4,
        num_hashes: int = 5,
        sizing_fpp: float = 1e-4,
    ) -> None:
        self.capacity = capacity
        self.max_fpp = max_fpp
        self.num_hashes = num_hashes
        self.sizing_fpp = sizing_fpp
        self.size_bits = size_for_capacity(capacity, sizing_fpp, num_hashes)
        self._cells = CountingBloomFilter(
            capacity=capacity,
            max_fpp=max_fpp,
            num_hashes=num_hashes,
            size_cells=self.size_bits,
        )
        self.count = 0
        self.total_inserts = 0
        self.total_lookups = 0
        self.reset_count = 0
        self.lookups_since_reset = 0

    def insert(self, item) -> None:
        self._cells.insert(item)
        self.count += 1
        self.total_inserts += 1

    def contains(self, item) -> bool:
        self.total_lookups += 1
        self.lookups_since_reset += 1
        return self._cells.contains(item)

    def remove(self, item) -> bool:
        removed = self._cells.remove(item)
        if removed:
            self.count = max(0, self.count - 1)
        return removed

    def current_fpp(self) -> float:
        return self._cells.current_fpp()

    def is_saturated(self) -> bool:
        return self._cells.is_saturated()

    def reset(self) -> None:
        self._cells = CountingBloomFilter(
            capacity=self.capacity,
            max_fpp=self.max_fpp,
            num_hashes=self.num_hashes,
            size_cells=self.size_bits,
        )
        self.count = 0
        self.reset_count += 1
        self.lookups_since_reset = 0

    def insert_with_auto_reset(self, item) -> bool:
        self.insert(item)
        if self.is_saturated():
            self.reset()
            return True
        return False


class _RevocableRouterMixin:
    """Swaps in a counting filter so revoked tags are physically removed.

    The blacklist semantics (revoked keys fail both the filter fast
    path and signature verification) live on
    :class:`~repro.core.router_base.TacticRouterBase` so *every* TACTIC
    node — including the provider origin — honours a revocation; this
    mixin adds the counting-filter removal that keeps the filter's FPP
    budget from being consumed by dead tags.
    """

    def _install_revocation(self) -> None:
        config = self.config
        self.bloom = RevocableTagFilter(
            capacity=config.bf_capacity,
            max_fpp=config.bf_max_fpp,
            num_hashes=config.bf_num_hashes,
            sizing_fpp=config.bf_sizing_fpp,
        )

    def revoke_tag_key(self, key: bytes) -> None:
        """Control-plane entry point: kill one tag on this router."""
        super().revoke_tag_key(key)
        self.bloom.remove(key)

    @property
    def revoked_keys(self) -> Set[bytes]:
        """Alias kept for symmetry with the base blacklist."""
        return self.revoked_tag_keys


class RevocableEdgeRouter(_RevocableRouterMixin, EdgeRouter):
    """Protocol 2 with explicit-revocation support."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_revocation()


class RevocableCoreRouter(_RevocableRouterMixin, CoreRouter):
    """Protocols 3/4 with explicit-revocation support."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._install_revocation()


@dataclass
class RevocationEvent:
    """One broadcast, for audit/inspection."""

    user_id: str
    tag_keys: List[bytes]
    issued_at: float
    completes_at: float


@dataclass
class RevocationAuthority:
    """The ISP-side control plane distributing revocations.

    ``propagation_delay`` models the control channel to each router
    (the broadcast completes one delay after issuance — routers are
    updated in parallel, as an ISP SDN controller would).
    """

    sim: Simulator
    routers: List[_RevocableRouterMixin]
    propagation_delay: float = 0.01
    events: List[RevocationEvent] = field(default_factory=list)

    def revoke_user(
        self,
        provider: Provider,
        user_id: str,
        revoke_enrollment: bool = True,
    ) -> RevocationEvent:
        """Revoke every live tag ``provider`` issued to ``user_id``.

        Returns the audit event; access is dead network-wide by
        ``completes_at`` (vs. ``tag_expiry`` under stock TACTIC).
        """
        keys = [
            tag.cache_key()
            for tag in provider.issued_tags.get(user_id, [])
            if not tag.is_expired(self.sim.now)
        ]
        if revoke_enrollment:
            provider.directory.revoke(user_id)
        # The origin enforces too: a revoked tag's signature still
        # verifies, so the provider needs the blacklist like any router.
        targets = list(self.routers) + [provider]
        for node in targets:
            for key in keys:
                self.sim.schedule(self.propagation_delay, node.revoke_tag_key, key)
        event = RevocationEvent(
            user_id=user_id,
            tag_keys=keys,
            issued_at=self.sim.now,
            completes_at=self.sim.now + self.propagation_delay,
        )
        self.events.append(event)
        return event


def collect_revocable_routers(nodes: Iterable) -> List[_RevocableRouterMixin]:
    """Convenience: every revocation-capable router in a node iterable."""
    return [n for n in nodes if isinstance(n, _RevocableRouterMixin)]
