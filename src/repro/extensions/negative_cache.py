"""Negative tag caching: edge-side DoS hardening.

Under stock TACTIC, a request carrying a *well-formed but forged* tag
passes the edge pre-check every time (the fields are fine), travels to
a content router, fails signature verification there, and elicits a
content+NACK — on every single attempt.  A flooding attacker thus
converts its cheap request stream into repeated upstream traffic and
router crypto.

The negative cache closes that amplification: when the edge learns a
tag is invalid (a NACK comes back naming it, or the edge's own
aggregated-tag validation fails), it remembers the tag's cache key for
a TTL and drops repeat requests on arrival.  Memory is bounded (LRU)
and poisoning is impossible — only *validation outcomes* are cached,
never unverified claims, and a false positive cannot occur because
keys are exact (SHA-256), not probabilistic.

The TTL matters: entries must not outlive the tag itself, or a client
that lets its tag expire, gets NACKed once, and re-registers could be
shadow-banned.  Keys are therefore remembered for
``min(ttl, remaining tag lifetime)`` where known.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.edge_router import EdgeRouter
from repro.ndn.link import Face
from repro.ndn.packets import Data, Interest


class NegativeTagCache:
    """Bounded TTL-LRU set of tag keys known to be invalid."""

    def __init__(self, capacity: int = 1024, ttl: float = 10.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[bytes, float]" = OrderedDict()
        self.insertions = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def remember(self, key: bytes, now: float, expires_cap: Optional[float] = None) -> None:
        """Record an invalid key until ``now + ttl`` (capped by the
        tag's own expiry when known)."""
        deadline = now + self.ttl
        if expires_cap is not None:
            deadline = min(deadline, expires_cap)
        if deadline <= now:
            return
        self._entries.pop(key, None)
        self._entries[key] = deadline
        self.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def contains(self, key: bytes, now: float) -> bool:
        deadline = self._entries.get(key)
        if deadline is None:
            return False
        if deadline < now:
            del self._entries[key]
            return False
        self._entries.move_to_end(key)
        self.hits += 1
        return True


class HardenedEdgeRouter(EdgeRouter):
    """Protocol 2 plus negative tag caching.

    Behaviour changes versus the stock edge router:

    - arriving requests whose tag key is negatively cached are dropped
      immediately (no Bloom lookup, no forwarding),
    - content arriving with an attached NACK feeds the cache,
    - the edge's own aggregated-tag signature failures feed the cache.
    """

    def __init__(self, sim, node_id, config, cert_store, metrics=None,
                 cache_capacity: int = 1024, cache_ttl: float = 10.0) -> None:
        super().__init__(sim, node_id, config, cert_store, metrics)
        self.negative_cache = NegativeTagCache(capacity=cache_capacity, ttl=cache_ttl)
        self.negative_drops = 0

    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if (
            interest.tag is not None
            and not interest.is_registration()
            and self.negative_cache.contains(interest.tag.cache_key(), self.sim.now)
        ):
            self.negative_drops += 1
            return
        super().on_interest(interest, in_face)

    def on_data(self, data: Data, in_face: Face) -> None:
        if data.nack is not None and data.nack.tag_key:
            # Upstream vouched for the invalidity; cap at the tag's own
            # expiry when the NACKed tag rode along with the Data.
            cap = None
            if data.tag is not None and data.tag.cache_key() == data.nack.tag_key:
                cap = data.tag.expiry
            self.negative_cache.remember(data.nack.tag_key, self.sim.now, cap)
        super().on_data(data, in_face)

    def verify_tag_signature(self, tag):
        valid, delay = super().verify_tag_signature(tag)
        if not valid:
            self.negative_cache.remember(
                tag.cache_key(), self.sim.now, expires_cap=tag.expiry
            )
        return valid, delay
