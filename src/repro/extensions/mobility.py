"""Client mobility: handover between access points.

Section 4.A binds every tag to the client's access path, so "a mobile
client needs to request a new tag every time she moves to a new
location".  :class:`MobileClient` owns faces to several access points
but listens on one at a time; :meth:`migrate` switches the active
attachment, invalidates the now-mislocated tags, and lets the normal
registration machinery obtain fresh ones.  :class:`MobilityManager`
drives periodic handovers for a population.

The modelling choice: links to former access points stay up (radio
range is not simulated) but the client ignores traffic arriving on
inactive faces, so in-flight responses addressed to the old location
are lost exactly as they would be on a real handover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.client import Client
from repro.ndn.link import Face
from repro.ndn.packets import Data, Nack
from repro.sim.engine import Simulator
from repro.sim.rng import Stream


@dataclass
class MobilityStats:
    """Handover accounting for one mobile client."""

    migrations: int = 0
    tags_invalidated: int = 0
    responses_lost_in_handover: int = 0
    migration_times: List[float] = field(default_factory=list)


class MobileClient(Client):
    """A client that hands over between access points.

    Connect it to every candidate AP (order defines face indices), then
    call :meth:`migrate` — directly or via :class:`MobilityManager`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_face_index = 0
        self.mobility = MobilityStats()

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @property
    def uplink(self) -> Face:
        return self.faces[self._active_face_index]

    @property
    def active_face_index(self) -> int:
        return self._active_face_index

    def migrate(self, face_index: int) -> None:
        """Hand over to the AP behind ``faces[face_index]``.

        Tags bind the old location's access path, so they are dropped;
        the pump re-registers before the next request.  Outstanding
        requests are left to their 1 s expiry (their responses, if any,
        arrive at the old attachment and are discarded).
        """
        if not 0 <= face_index < len(self.faces):
            raise IndexError(f"no face {face_index} (have {len(self.faces)})")
        if face_index == self._active_face_index:
            return
        self._active_face_index = face_index
        self.mobility.migrations += 1
        self.mobility.migration_times.append(self.sim.now)
        self.mobility.tags_invalidated += len(self.tags)
        self.tags.clear()
        # Any in-flight registration was addressed from the old location.
        for pending in self._registration_pending.values():
            pending.timeout_event.cancel()
        self._registration_pending.clear()
        self._pump()

    # ------------------------------------------------------------------
    # Traffic on inactive faces is gone with the old attachment
    # ------------------------------------------------------------------
    def on_data(self, data: Data, in_face: Face) -> None:
        if in_face is not self.uplink:
            self.mobility.responses_lost_in_handover += 1
            return
        super().on_data(data, in_face)

    def on_nack(self, nack: Nack, in_face: Face) -> None:
        if in_face is not self.uplink:
            self.mobility.responses_lost_in_handover += 1
            return
        super().on_nack(nack, in_face)


class MobilityManager:
    """Schedules periodic handovers for a set of mobile clients.

    Each client moves to a uniformly random *other* attachment every
    ``interval`` seconds (jittered per client so handovers do not
    synchronize).
    """

    def __init__(
        self,
        sim: Simulator,
        clients: List[MobileClient],
        interval: float,
        until: float,
        rng: Optional[Stream] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.clients = clients
        self.interval = interval
        self.until = until
        self.rng = rng or sim.rng.stream("mobility")
        for client in clients:
            first = self.rng.uniform(0.5 * interval, 1.5 * interval)
            sim.schedule(first, self._move, client)

    def _move(self, client: MobileClient) -> None:
        if self.sim.now >= self.until:
            return
        if len(client.faces) > 1:
            choices = [
                i for i in range(len(client.faces)) if i != client.active_face_index
            ]
            client.migrate(self.rng.choice(choices))
        next_in = self.rng.uniform(0.5 * self.interval, 1.5 * self.interval)
        self.sim.schedule(next_in, self._move, client)
