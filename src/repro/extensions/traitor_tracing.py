"""Traitor tracing: detecting shared tags.

The paper's future work: "augment our mechanism with a traitor tracing
feature for preventing the clients from sharing their tags with
unauthorized users and thwarting replay attack."

With the access-path binding *on*, a shared tag simply fails at the
edge.  With it off (the paper's own simulated configuration), sharing
works — but it leaves a fingerprint: the same signed tag observed with
*different* access paths, or at different edge routers, within one tag
lifetime.  A single client cannot be in two places at once (the paper
assumes sharer and freeloader are not co-located under the same AP).

:class:`TraitorDetector` is the ISP-side aggregator of those
observations; :class:`TracingEdgeRouter` is Protocol 2 plus one
bookkeeping call per request.  On detection the detector can hand the
offending client to a :class:`~repro.extensions.explicit_revocation.
RevocationAuthority` for immediate network-wide revocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.edge_router import EdgeRouter
from repro.core.tag import Tag
from repro.ndn.link import Face
from repro.ndn.packets import Interest


@dataclass
class TraitorAlert:
    """One detected sharing incident."""

    tag_key: bytes
    client_key_locator: str
    first_seen: Tuple[bytes, str]  # (access path, edge router id)
    second_seen: Tuple[bytes, str]
    detected_at: float


@dataclass
class _TagSighting:
    access_path: bytes
    edge_id: str
    expires_at: float


class TraitorDetector:
    """Aggregates per-tag location sightings across edge routers.

    A tag seen with two distinct (access-path, edge-router) locations
    before it expires is being shared; the detector raises one alert
    per offending tag and invokes ``on_alert`` (e.g. a revocation
    authority callback).
    """

    def __init__(self, on_alert: Optional[Callable[[TraitorAlert], None]] = None) -> None:
        self._sightings: Dict[bytes, _TagSighting] = {}
        self._alerted: Set[bytes] = set()
        self.alerts: List[TraitorAlert] = []
        self.on_alert = on_alert
        self.observations = 0

    def observe(
        self,
        tag: Tag,
        observed_access_path: bytes,
        edge_id: str,
        now: float,
    ) -> Optional[TraitorAlert]:
        """Record one request's (tag, location); returns an alert if
        this observation proves sharing."""
        self.observations += 1
        key = tag.cache_key()
        if key in self._alerted:
            return None
        location = (observed_access_path, edge_id)
        sighting = self._sightings.get(key)
        if sighting is None or sighting.expires_at < now:
            self._sightings[key] = _TagSighting(
                access_path=observed_access_path,
                edge_id=edge_id,
                expires_at=tag.expiry,
            )
            return None
        if (sighting.access_path, sighting.edge_id) == location:
            return None
        alert = TraitorAlert(
            tag_key=key,
            client_key_locator=tag.client_key_locator,
            first_seen=(sighting.access_path, sighting.edge_id),
            second_seen=location,
            detected_at=now,
        )
        self._alerted.add(key)
        self.alerts.append(alert)
        if self.on_alert is not None:
            self.on_alert(alert)
        return alert

    def is_flagged(self, tag: Tag) -> bool:
        return tag.cache_key() in self._alerted

    def flagged_clients(self) -> Set[str]:
        """Key locators of every client caught sharing."""
        return {alert.client_key_locator for alert in self.alerts}


class TracingEdgeRouter(EdgeRouter):
    """Protocol 2 plus traitor-tracing observation on every tagged request.

    Flagged tags are dropped at the edge from the moment of detection —
    sharing costs the *legitimate* owner their access, which is the
    deterrent the paper envisions.
    """

    def __init__(self, sim, node_id, config, cert_store, metrics=None,
                 detector: Optional[TraitorDetector] = None) -> None:
        super().__init__(sim, node_id, config, cert_store, metrics)
        self.detector = detector or TraitorDetector()
        self.traitor_drops = 0

    def on_interest(self, interest: Interest, in_face: Face) -> None:
        if interest.tag is not None and not interest.is_registration():
            self.detector.observe(
                interest.tag,
                interest.observed_access_path,
                self.node_id,
                self.sim.now,
            )
            if self.detector.is_flagged(interest.tag):
                self.traitor_drops += 1
                return  # silently drop, like other Protocol 1 failures
        super().on_interest(interest, in_face)
