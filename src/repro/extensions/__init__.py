"""Extensions beyond the paper's evaluated system.

The paper's Sections 4.A, 6, and 8 sketch three directions it defers:

- **mobility** ("A mobile client needs to request a new tag every time
  she moves to a new location"; testing "under nodes mobility" is named
  future work) — :mod:`repro.extensions.mobility`;
- **explicit revocation** faster than tag expiry, enabled by counting
  Bloom filters plus a router-side blacklist —
  :mod:`repro.extensions.explicit_revocation`;
- **traitor tracing** ("we plan to augment our mechanism with a traitor
  tracing feature for preventing the clients from sharing their tags")
  — :mod:`repro.extensions.traitor_tracing`.

Each extension is opt-in and layered on the core protocol classes; the
core reproduction never depends on this package.
"""

from repro.extensions.explicit_revocation import (
    RevocableCoreRouter,
    RevocableEdgeRouter,
    RevocationAuthority,
)
from repro.extensions.mobility import MobileClient, MobilityManager
from repro.extensions.negative_cache import HardenedEdgeRouter, NegativeTagCache
from repro.extensions.traitor_tracing import TraitorDetector, TracingEdgeRouter

__all__ = [
    "HardenedEdgeRouter",
    "MobileClient",
    "MobilityManager",
    "NegativeTagCache",
    "RevocableCoreRouter",
    "RevocableEdgeRouter",
    "RevocationAuthority",
    "TracingEdgeRouter",
    "TraitorDetector",
]
