"""Trace-driven workloads: record, save, replay request sequences.

Synthetic Zipf clients are the paper's workload; real evaluations also
replay *recorded* traces (e.g. CDN logs).  This module provides:

- :class:`RequestTrace` — an ordered list of (time, user, object-index)
  records with save/load (JSON lines) and generation from any sampler,
- :class:`TraceClient` — a client that issues exactly the requests a
  trace prescribes for it (object-level; chunks expand sequentially),
  reusing the standard window/tag machinery.

Determinism note: a generated trace captures the workload *once*, so
two schemes replaying the same trace see byte-identical demand — a
stronger comparison basis than same-seed resampling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.client import Client
from repro.sim.rng import seeded_stream
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class TraceRecordEntry:
    """One object request in a trace."""

    time: float
    user_id: str
    object_index: int


class RequestTrace:
    """An ordered request log."""

    def __init__(self, entries: List[TraceRecordEntry]) -> None:
        self.entries = sorted(entries, key=lambda e: (e.time, e.user_id))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceRecordEntry]:
        return iter(self.entries)

    def for_user(self, user_id: str) -> List[TraceRecordEntry]:
        return [e for e in self.entries if e.user_id == user_id]

    def users(self) -> List[str]:
        return sorted({e.user_id for e in self.entries})

    def duration(self) -> float:
        return self.entries[-1].time if self.entries else 0.0

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @staticmethod
    def generate_zipf(
        user_ids: List[str],
        num_objects: int,
        alpha: float,
        duration: float,
        mean_interarrival: float,
        seed: int = 0,
    ) -> "RequestTrace":
        """Poisson arrivals per user, Zipf object choice — the paper's
        workload, frozen into a replayable artifact."""
        rng = seeded_stream(seed)
        sampler = ZipfSampler(num_objects, alpha, rng)
        entries: List[TraceRecordEntry] = []
        for user_id in user_ids:
            t = rng.expovariate(1.0 / mean_interarrival)
            while t < duration:
                entries.append(
                    TraceRecordEntry(
                        time=t, user_id=user_id, object_index=sampler.sample()
                    )
                )
                t += rng.expovariate(1.0 / mean_interarrival)
        return RequestTrace(entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self.entries:
                fh.write(
                    json.dumps(
                        {"t": entry.time, "u": entry.user_id, "o": entry.object_index}
                    )
                )
                fh.write("\n")
        return len(self.entries)

    @staticmethod
    def load(path: str) -> "RequestTrace":
        entries = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                entries.append(
                    TraceRecordEntry(
                        time=float(raw["t"]),
                        user_id=str(raw["u"]),
                        object_index=int(raw["o"]),
                    )
                )
        return RequestTrace(entries)


class TraceClient(Client):
    """A client whose object choices come from a trace, not a sampler.

    The trace prescribes *when* to start each object and *which* object;
    chunk-level pipelining, tags, registration, and timeouts all reuse
    the standard :class:`~repro.core.client.Client` machinery.  Trace
    entries whose time arrives while the previous object is still being
    fetched queue up (the window, not the trace, paces the wire).
    """

    def __init__(self, *args, trace_entries: List[TraceRecordEntry], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._trace_queue: List[TraceRecordEntry] = list(trace_entries)
        self._released: List[int] = []
        self.trace_exhausted = False

    def start(self, at: float, until: float) -> None:
        self.end_time = until
        for entry in self._trace_queue:
            self.sim.schedule_at(
                min(max(at, entry.time), until), self._release, entry.object_index
            )
        self.sim.schedule_at(at, self._pump)

    def _release(self, object_index: int) -> None:
        self._released.append(object_index)
        self._pump()

    def _peek_next(self) -> Tuple[object, int]:
        if self._cursor is None or self._cursor[1] >= self._cursor[0].num_chunks:
            if not self._released:
                self.trace_exhausted = True
                raise _TraceDrained()
            index = self._released.pop(0) % len(self.catalog)
            self._cursor = (self.catalog[index], 0)
        return self._cursor

    def _pump(self) -> None:
        try:
            super()._pump()
        except _TraceDrained:
            pass  # nothing scheduled right now; _release re-pumps


class _TraceDrained(Exception):
    """Internal: the trace has no released object to fetch yet."""
