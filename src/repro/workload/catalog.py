"""The global content catalog users choose from.

Flattens every provider's published objects into one popularity-ranked
list (the paper's Zipf distribution runs over contents, with each of
the 10 providers contributing 50 objects of 50 chunks).  Entries carry
the access level so clients can restrict selection to objects their
tag satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.ndn.name import Name
from repro.sim.rng import seeded_stream


@dataclass(frozen=True)
class CatalogEntry:
    """One requestable object."""

    provider_id: str
    prefix: Name
    access_level: Optional[int]
    num_chunks: int

    def chunk_name(self, index: int) -> Name:
        return self.prefix / f"chunk-{index}"


class Catalog:
    """Popularity-ranked list of all published objects."""

    def __init__(self, entries: List[CatalogEntry], shuffle_seed: Optional[int] = None) -> None:
        self.entries = list(entries)
        if shuffle_seed is not None:
            # Interleave providers in the popularity ranking so rank 1
            # is not always provider 0's first object.
            seeded_stream(shuffle_seed).shuffle(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> CatalogEntry:
        return self.entries[index]

    def accessible_to(self, access_level: Optional[int]) -> "Catalog":
        """The sub-catalog a tag at ``access_level`` may retrieve.

        Order (and therefore relative popularity rank) is preserved.
        """
        # Imported here, not at module level: repro.core's package init
        # pulls in the client, which imports this module (cycle).
        from repro.core.access_level import satisfies

        return Catalog(
            [e for e in self.entries if satisfies(access_level, e.access_level)]
        )

    def private_only(self) -> "Catalog":
        """Only access-controlled objects (what attackers target)."""
        return Catalog([e for e in self.entries if e.access_level is not None])


def build_catalog(providers: Iterable, shuffle_seed: Optional[int] = 0) -> Catalog:
    """Build the global catalog from :class:`~repro.core.provider.Provider`
    instances (anything exposing ``node_id`` and ``catalog``)."""
    entries = [
        CatalogEntry(
            provider_id=provider.node_id,
            prefix=obj.prefix,
            access_level=obj.access_level,
            num_chunks=obj.num_chunks,
        )
        for provider in providers
        for obj in provider.catalog
    ]
    return Catalog(entries, shuffle_seed=shuffle_seed)
