"""Workload generation: content popularity and catalogs.

The paper's clients "take the content popularity (Zipf distribution
with alpha = 0.7) into account to select and request new contents", and
popularity is static over time (Breslau et al., the paper's [19]).
"""

from repro.workload.catalog import Catalog, CatalogEntry, build_catalog
from repro.workload.zipf import ZipfSampler

__all__ = [
    "Catalog",
    "CatalogEntry",
    "RequestTrace",
    "TraceClient",
    "TraceRecordEntry",
    "ZipfSampler",
    "build_catalog",
]

_LAZY = {"RequestTrace", "TraceClient", "TraceRecordEntry"}


def __getattr__(name):
    # repro.workload.trace subclasses repro.core.client.Client, which
    # itself imports this package's catalog module — loading trace
    # eagerly here would be a circular import.  PEP 562 lazy loading
    # keeps `from repro.workload import TraceClient` working.
    if name in _LAZY:
        from repro.workload import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
