"""Zipf popularity sampling.

Rank ``r`` (1-based) of ``n`` items is drawn with probability
proportional to ``1 / r^alpha``.  Sampling uses a precomputed CDF and
binary search: O(n) setup, O(log n) per draw — fast enough for millions
of requests over catalogs of hundreds of objects.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.sim.rng import Stream, seeded_stream


class ZipfSampler:
    """Draws 0-based item indices with Zipf(alpha) popularity.

    >>> rng = seeded_stream(7)
    >>> sampler = ZipfSampler(100, alpha=0.7, rng=rng)
    >>> draws = [sampler.sample() for _ in range(1000)]
    >>> draws.count(0) > draws.count(99)
    True
    """

    def __init__(self, num_items: int, alpha: float, rng: Stream) -> None:
        if num_items <= 0:
            raise ValueError(f"num_items must be positive, got {num_items}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.num_items = num_items
        self.alpha = alpha
        self._rng = rng
        self._cdf = self._build_cdf(num_items, alpha)

    @staticmethod
    def _build_cdf(num_items: int, alpha: float) -> List[float]:
        weights = [1.0 / (rank ** alpha) for rank in range(1, num_items + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift
        return cdf

    def sample(self) -> int:
        """One 0-based index; 0 is the most popular item."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def probability(self, index: int) -> float:
        """Exact sampling probability of ``index``."""
        if not 0 <= index < self.num_items:
            raise IndexError(index)
        lower = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - lower
