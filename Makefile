# Convenience entry points; every target is a thin wrapper over the
# commands CI runs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test qa lint flow sanitize determinism bench perf regress

test:
	$(PYTHON) -m pytest -x -q

# The full QA gate: simlint + simflow + SimSan smoke + determinism
# (+ mypy/ruff when installed).  docs/STATIC_ANALYSIS.md documents
# every step.
qa:
	$(PYTHON) -m repro.qa

lint:
	$(PYTHON) -m repro.qa.lint src/repro

# Whole-program flow analysis (enforcement-path dominance, determinism
# taint, worker-boundary safety), gated on the checked-in baseline.
flow:
	$(PYTHON) -m repro.qa.flow --baseline

# Tier-1 substrate tests with the runtime sanitizer armed.
sanitize:
	REPRO_SIMSAN=1 $(PYTHON) -m pytest -x -q \
		tests/test_sim_engine.py tests/test_ndn_tables.py \
		tests/test_ndn_link_node.py tests/test_experiments.py \
		tests/test_integration_scenarios.py tests/test_qa_simsan.py

determinism:
	$(PYTHON) -m repro.qa.determinism --duration 3 --scale 0.1

bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q -s

# The performance benchmarks only: engine fan-out speedup + cache
# round-trip (writes BENCH_parallel.json), sim-core throughput with
# the phase breakdown (writes BENCH_simcore.json + the flamegraph
# source), and the Bloom hot-path micro-benchmarks.
# docs/PERFORMANCE.md explains how to read the output.
perf:
	PYTHONPATH=src:. $(PYTHON) -m pytest \
		benchmarks/test_parallel_speedup.py \
		benchmarks/test_simcore_throughput.py \
		benchmarks/test_bloom_micro.py -q -s

# Regression gate: run a tiny two-spec fig6 fleet twice into a fresh
# history (second pass replays from the run cache, telemetry included),
# then diff the two entries — non-zero exit on any metric drift or
# wall-clock growth beyond the budget.  The CI job of the same name
# uploads the engine events, merged fleet metrics, and Chrome trace
# this leaves in $(REGRESS_DIR).  docs/OBSERVABILITY.md, "Fleet
# observability".
REGRESS_DIR ?= .repro-regress

regress:
	rm -rf $(REGRESS_DIR)
	for i in 1 2; do \
		$(PYTHON) -m repro fig6 --duration 2 --scale 0.1 --jobs 1 \
			--cache-dir $(REGRESS_DIR)/cache \
			--history-dir $(REGRESS_DIR) \
			--fleet-telemetry \
			--engine-events $(REGRESS_DIR)/engine.events.jsonl \
			--fleet-metrics-out $(REGRESS_DIR)/fleet-metrics.json \
			--trace-out $(REGRESS_DIR)/trace.json --trace-format chrome \
			> /dev/null || exit 1; \
	done
	$(PYTHON) -m repro.obs.history diff --history-dir $(REGRESS_DIR) \
		--figure fig6 --wall-tolerance 200
